"""Tests for the multi-process evaluation tier (``repro.service.procpool``).

Four layers:

* the **claim queue** in isolation: atomic claim, shard affinity, lease
  expiry, dead-worker requeue, idempotent completion, abort drain;
* the **message vocabulary**: every declared type pickles (the boundary
  contract RA107 checks statically, verified dynamically here);
* the **tier end-to-end**: process-pool answers are identical to the
  in-process tier's, per-worker cache reports surface in ``stats()``,
  memory-backed shards are refused, ``repro batch --workers N`` works;
* **fault injection**: SIGKILL a worker while its items are deterministically
  claimed-but-uncompleted (``_debug_item_sleep_s``) — every admitted request
  still completes exactly once; with the restart budget exhausted the pool
  goes broken and fails pending requests loudly instead of hanging.
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
import signal

import pytest

from repro.cli import main
from repro.graphdb.database import GraphDatabase
from repro.graphdb.storage import save_snapshot
from repro.service import (
    DatabaseRegistry,
    ProcessPoolBrokenError,
    QueryRequest,
    QueryService,
    QuerySpec,
    render_service_stats,
)
from repro.service.procpool import ClaimQueue
from repro.service.procpool.messages import (
    MESSAGE_TYPES,
    ClaimRequest,
    WorkItem,
    WorkResult,
    WorkerShutdown,
    WorkerStats,
)


def small_db() -> GraphDatabase:
    return GraphDatabase.from_edges(
        [("n1", "a", "n2"), ("n2", "a", "n3"), ("n1", "b", "n3"), ("n3", "c", "n4")]
    )


def work_item(seq: int, shard: str = "g", path: str = "/snap/g.rgsnap") -> WorkItem:
    return WorkItem(
        item_id=(shard, 1, 0, f"fp{seq}", seq),
        shard=shard,
        path=path,
        fmt=None,
        spec={"edges": [["x", "a", "y"]], "boolean": True},
    )


def run(coroutine):
    return asyncio.run(coroutine)


async def _claimed_window(service: QueryService, minimum: int, timeout_s: float = 15.0):
    """Wait until ≥ ``minimum`` items sit in the claimed-but-uncompleted state.

    With ``_debug_item_sleep_s`` set, reaching this state guarantees a
    worker is parked inside its fault window — killing it now is
    deterministic, not a timing bet.
    """
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        stats = service.stats()["workers"]
        if stats.get("claimed_now", 0) >= minimum:
            return
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"never reached {minimum} live claims: {stats}")
        await asyncio.sleep(0.05)


# ---------------------------------------------------------------------------
# ClaimQueue
# ---------------------------------------------------------------------------


class TestClaimQueue:
    def test_claim_is_exclusive_and_fifo(self):
        queue = ClaimQueue(lease_s=30.0)
        first, second = work_item(1), work_item(2)
        queue.offer(first)
        queue.offer(second)
        assert queue.claim(1, (), now=0.0) is first
        assert queue.claim(2, (), now=0.0) is second
        assert queue.claim(3, (), now=0.0) is None
        assert queue.outstanding() == 2  # both claimed, none completed

    def test_affinity_prefers_loaded_paths(self):
        queue = ClaimQueue(lease_s=30.0)
        cold = work_item(1, shard="a", path="/snap/a.rgsnap")
        warm = work_item(2, shard="b", path="/snap/b.rgsnap")
        queue.offer(cold)
        queue.offer(warm)
        # The worker has shard b loaded: it gets b's item even though a's
        # is older; a fresh worker then takes the remaining one.
        assert queue.claim(1, ("/snap/b.rgsnap",), now=0.0) is warm
        assert queue.claim(2, (), now=0.0) is cold
        stats = queue.stats()
        assert stats["affinity_hits"] == 1
        assert stats["affinity_misses"] == 1

    def test_lease_expiry_requeues_to_front(self):
        queue = ClaimQueue(lease_s=1.0)
        stuck, fresh = work_item(1), work_item(2)
        queue.offer(stuck)
        assert queue.claim(1, (), now=0.0) is stuck
        queue.offer(fresh)
        assert queue.expire(now=0.5) == []  # lease still live
        assert queue.expire(now=1.5) == [stuck]
        # The recovered item outranks the never-claimed one.
        assert queue.claim(2, (), now=1.5) is stuck
        stats = queue.stats()
        assert stats["expired_leases"] == 1 and stats["requeued"] == 1

    def test_release_worker_requeues_only_its_claims(self):
        queue = ClaimQueue(lease_s=30.0)
        mine, yours = work_item(1), work_item(2)
        queue.offer(mine)
        queue.offer(yours)
        queue.claim(1, (), now=0.0)
        queue.claim(2, (), now=0.0)
        assert queue.release_worker(1) == [mine]
        assert queue.claimed_by(1) == 0
        assert queue.claimed_by(2) == 1
        assert queue.claim(3, (), now=0.0) is mine

    def test_completion_is_idempotent(self):
        queue = ClaimQueue(lease_s=30.0)
        item = work_item(1)
        queue.offer(item)
        queue.claim(1, (), now=0.0)
        assert queue.complete(item.item_id, 1) is True
        assert queue.complete(item.item_id, 1) is False
        stats = queue.stats()
        assert stats["completed"] == 1
        assert stats["duplicate_completions"] == 1
        assert queue.outstanding() == 0

    def test_first_completion_cancels_the_requeued_copy(self):
        # The stuck-but-alive scenario: the lease expires and the item is
        # requeued, then the original claimant finishes after all.  Its
        # completion must win AND remove the requeued copy, so the item is
        # neither re-run nor double-delivered.
        queue = ClaimQueue(lease_s=1.0)
        item = work_item(1)
        queue.offer(item)
        queue.claim(1, (), now=0.0)
        assert queue.expire(now=2.0) == [item]
        assert queue.complete(item.item_id, 1) is True
        assert queue.outstanding() == 0
        assert queue.claim(2, (), now=2.0) is None

    def test_drain_aborts_and_poisons_late_completions(self):
        queue = ClaimQueue(lease_s=30.0)
        claimed, pending = work_item(1), work_item(2)
        queue.offer(claimed)
        queue.offer(pending)
        queue.claim(1, (), now=0.0)
        drained = queue.drain()
        assert {item.item_id for item in drained} == {
            claimed.item_id,
            pending.item_id,
        }
        assert queue.outstanding() == 0
        # A zombie worker's late result must not resurrect a failed future.
        assert queue.complete(claimed.item_id, 1) is False

    def test_rejects_nonpositive_lease(self):
        with pytest.raises(ValueError):
            ClaimQueue(lease_s=0.0)


# ---------------------------------------------------------------------------
# Message vocabulary
# ---------------------------------------------------------------------------


class TestMessages:
    def test_every_declared_message_type_pickles(self):
        samples = [
            ClaimRequest(worker_id=1, loaded=("/snap/g.rgsnap",)),
            work_item(1),
            WorkResult(
                item_id=("g", 1, 0, "fp1", 1),
                worker_id=1,
                ok=True,
                tuples=(("n1", "n2"),),
                worker_cache={"reachability": {"hits": 3, "misses": 1}},
            ),
            WorkerShutdown(),
            WorkerStats(worker_id=1, evaluations=4, errors=0),
        ]
        assert {type(sample) for sample in samples} == set(MESSAGE_TYPES)
        for sample in samples:
            assert pickle.loads(pickle.dumps(sample)) == sample


# ---------------------------------------------------------------------------
# The tier end-to-end: same answers as the in-process tier
# ---------------------------------------------------------------------------


def _payload(result):
    payload = json.loads(result.to_json())
    # Timing and cache numbers legitimately differ across tiers.
    for volatile in ("timing", "cache", "deduplicated"):
        payload.pop(volatile, None)
    return payload


class TestProcessTier:
    def requests(self):
        return [
            QueryRequest(
                "g",
                QuerySpec(edges=(("x", "w{a|b}", "y"), ("y", "&w", "z"))),
                request_id="bool",
            ),
            QueryRequest(
                "g",
                QuerySpec(edges=(("x", "a", "y"),), output_variables=("x", "y")),
                request_id="out",
            ),
            QueryRequest(
                "h",
                QuerySpec(edges=(("x", "aa", "y"),), output_variables=("x", "y")),
                request_id="other-shard",
            ),
            QueryRequest(
                "g",
                QuerySpec(edges=(("x", "b", "y"),), output_variables=("x", "y")),
                request_id="out-b",
            ),
        ]

    def registry(self, tmp_path) -> DatabaseRegistry:
        registry = DatabaseRegistry()
        for name in ("g", "h"):
            path = tmp_path / f"{name}.rgsnap"
            save_snapshot(small_db(), path)
            registry.load(name, str(path))
        return registry

    def test_answers_match_the_thread_tier(self, tmp_path):
        registry = self.registry(tmp_path)
        requests = self.requests()

        async def thread_tier():
            async with QueryService(registry, concurrency=2) as service:
                return await service.run_batch(requests)

        async def process_tier():
            async with QueryService(
                registry, concurrency=2, pool="process"
            ) as service:
                results = await service.run_batch(requests)
                return results, service.stats()

        expected = [_payload(result) for result in run(thread_tier())]
        results, stats = run(process_tier())
        assert [_payload(result) for result in results] == expected
        assert stats["pool"] == "process"
        workers = stats["workers"]
        assert workers["evaluations"] == len(requests)
        assert workers["completed"] == len(requests)
        assert workers["deaths"] == 0 and not workers["broken"]

    def test_worker_cache_reports_surface_and_render(self, tmp_path):
        registry = self.registry(tmp_path)

        async def scenario():
            async with QueryService(
                registry, concurrency=2, pool="process"
            ) as service:
                await service.run_batch(self.requests())
                return service.stats()

        stats = run(scenario())
        caches = stats["worker_caches"]
        assert isinstance(caches, list) and caches
        assert all(isinstance(report, dict) for report in caches)
        rendered = render_service_stats(stats)
        assert "worker caches (" in rendered and "worker[0]:" in rendered
        assert "pool    : process" in rendered

    def test_memory_backed_shard_is_refused(self):
        registry = DatabaseRegistry()
        registry.register("mem", small_db())
        request = QueryRequest(
            "mem", QuerySpec(edges=(("x", "a", "y"),), output_variables=("x",))
        )

        async def scenario():
            async with QueryService(
                registry, concurrency=1, pool="process"
            ) as service:
                return await service.submit(request)

        result = run(scenario())
        assert result.ok is False
        assert "not file-backed" in result.error

    def test_pool_argument_is_validated(self):
        with pytest.raises(ValueError):
            QueryService(DatabaseRegistry(), pool="fibers")


class TestCliWorkers:
    def test_batch_workers_flag_uses_the_process_tier(self, tmp_path, capsys):
        snapshot = tmp_path / "g.rgsnap"
        save_snapshot(small_db(), snapshot)
        lines = [
            {"id": "r1", "database": "g",
             "edges": [["x", "w{a|b}", "y"], ["y", "&w", "z"]], "boolean": True},
            {"id": "r2", "database": "g", "edges": [["x", "a", "y"]],
             "output": ["x", "y"]},
        ]
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n", encoding="utf-8"
        )
        code = main(
            [
                "batch",
                str(requests),
                "--database", f"g={snapshot}",
                "--workers", "2",
                "--stats",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        out = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert [line["id"] for line in out] == ["r1", "r2"]
        assert all(line["ok"] for line in out)
        assert out[0]["boolean"] is True
        assert out[1]["tuples"] == [["n1", "n2"], ["n2", "n3"]]
        assert "pool    : process" in captured.err
        assert "worker caches (2 processes)" in captured.err

    def test_workers_must_be_positive(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"database": "g", "edges": [["x", "a", "y"]]}\n')
        code = main(["batch", str(requests), "--workers", "0"])
        assert code == 1
        assert "--workers" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Fault injection: SIGKILL and the restart budget
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def _requests(self, count: int):
        # Distinct labels keep the fingerprints distinct; dedup is also off
        # in the service, so every request is its own claim-queue item.
        return [
            QueryRequest(
                "g",
                QuerySpec(
                    edges=(("x", "a" if index % 2 else "aa", "y"),),
                    output_variables=("x", "y"),
                ),
                request_id=f"r{index}",
            )
            for index in range(count)
        ]

    def _registry(self, tmp_path) -> DatabaseRegistry:
        registry = DatabaseRegistry()
        path = tmp_path / "g.rgsnap"
        save_snapshot(small_db(), path)
        registry.load("g", str(path))
        return registry

    def test_sigkill_mid_batch_completes_every_request_exactly_once(self, tmp_path):
        registry = self._registry(tmp_path)
        requests = self._requests(8)

        async def scenario():
            async with QueryService(
                registry, concurrency=2, pool="process", dedup=False
            ) as service:
                # Park every worker for 0.3s between claim and evaluation:
                # the kill below lands inside that window by construction.
                service._pool._debug_item_sleep_s = 0.3
                batch = asyncio.create_task(service.run_batch(requests))
                await _claimed_window(service, minimum=2)
                victim = service._pool.worker_pids()[0]
                os.kill(victim, signal.SIGKILL)
                results = await batch
                return results, service.stats()

        results, stats = run(scenario())
        assert [result.request_id for result in results] == [
            f"r{index}" for index in range(8)
        ]
        assert all(result.ok for result in results)
        workers = stats["workers"]
        # The crash was noticed, the claims were requeued, a replacement
        # was spawned — and completion stayed exactly-once throughout.
        assert workers["deaths"] >= 1
        assert workers["respawns"] >= 1
        assert workers["requeued"] >= 1
        assert workers["completed"] == 8
        assert workers["evaluations"] == 8
        assert not workers["broken"]
        assert stats["completed"] == 8 and stats["failed"] == 0

    def test_exhausted_restart_budget_breaks_the_pool_loudly(self, tmp_path):
        registry = self._registry(tmp_path)
        requests = self._requests(3)

        async def scenario():
            async with QueryService(
                registry,
                concurrency=1,
                pool="process",
                dedup=False,
                restart_budget=0,
            ) as service:
                service._pool._debug_item_sleep_s = 5.0
                batch = asyncio.create_task(service.run_batch(requests))
                await _claimed_window(service, minimum=1)
                os.kill(service._pool.worker_pids()[0], signal.SIGKILL)
                results = await batch
                return results, service.stats()

        results, stats = run(scenario())
        assert all(result.ok is False for result in results)
        assert any("restart budget" in result.error for result in results)
        workers = stats["workers"]
        assert workers["broken"]
        assert workers["respawns"] == 0
        assert workers["workers_live"] == 0
        assert stats["failed"] == 3

    def test_submission_after_breakage_fails_fast(self, tmp_path):
        registry = self._registry(tmp_path)

        async def scenario():
            async with QueryService(
                registry, concurrency=1, pool="process", restart_budget=0
            ) as service:
                service._pool._debug_item_sleep_s = 5.0
                first = asyncio.create_task(
                    service.submit(self._requests(1)[0])
                )
                await _claimed_window(service, minimum=1)
                os.kill(service._pool.worker_pids()[0], signal.SIGKILL)
                broken = await first
                # The pool is now broken: new work is refused immediately
                # instead of queueing forever.
                late = await service.submit(self._requests(2)[1])
                return broken, late

        broken, late = run(scenario())
        assert broken.ok is False and "restart budget" in broken.error
        assert late.ok is False
        assert ProcessPoolBrokenError is not None  # exported surface
