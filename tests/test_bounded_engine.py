"""Tests for CXRPQ^<=k / CXRPQ^log evaluation (Theorem 6, Corollary 1)."""

import pytest

from repro.core.alphabet import Alphabet
from repro.core.errors import EvaluationError
from repro.engine.bounded import (
    bounded_holds,
    enumerate_image_mappings,
    evaluate_bounded,
    evaluate_log_bounded,
)
from repro.engine.generic import evaluate_generic
from repro.engine.simple import evaluate_simple
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import path_database, random_graph
from repro.queries import CXRPQ

AB = Alphabet("ab")
ABC = Alphabet("abc")


class TestImageEnumeration:
    def test_blind_enumeration_size(self):
        query = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w", "z")])
        mappings = list(enumerate_image_mappings(query, AB, 1, strategy="blind"))
        assert len(mappings) == 3  # "", "a", "b"

    def test_pruned_enumeration_is_a_subset_of_blind(self):
        query = CXRPQ([("x", "w{aa}", "y"), ("y", "&w", "z")])
        blind = {tuple(sorted(m.items())) for m in enumerate_image_mappings(query, AB, 2, strategy="blind")}
        pruned = {tuple(sorted(m.items())) for m in enumerate_image_mappings(query, AB, 2, strategy="pruned")}
        assert pruned <= blind
        assert len(pruned) < len(blind)
        assert (("w", "aa"),) in pruned

    def test_pruned_enumeration_respects_dependencies(self):
        query = CXRPQ([("x", "v{a|b}", "y"), ("y", "w{&v c}", "z"), ("z", "&w", "t")])
        mappings = list(enumerate_image_mappings(query, ABC, 2, strategy="pruned"))
        images = {(m["v"], m["w"]) for m in mappings}
        assert ("a", "ac") in images
        assert ("b", "bc") in images
        assert ("a", "bc") not in images

    def test_unknown_strategy_rejected(self):
        query = CXRPQ([("x", "w{a}", "y")])
        with pytest.raises(EvaluationError):
            list(enumerate_image_mappings(query, AB, 1, strategy="nonsense"))

    def test_query_without_variables(self):
        query = CXRPQ([("x", "a*", "y")])
        assert list(enumerate_image_mappings(query, AB, 2)) == [{}]


class TestEvaluation:
    def test_requires_a_bound(self):
        query = CXRPQ([("x", "w{a+}", "y"), ("y", "&w", "z")])
        with pytest.raises(EvaluationError):
            evaluate_bounded(query, GraphDatabase.from_edges([(0, "a", 1)]))

    def test_bound_changes_the_answer(self):
        # The anchor edges force w to label both halves of the four-a segment,
        # so a match needs |w| = 2.
        query = CXRPQ(
            [("s", "c", "x"), ("x", "w{a+}", "y"), ("y", "&w", "z"), ("z", "b", "t")]
        )
        db, _first, _last = path_database("caaaab")
        assert not bounded_holds(query, db, bound=1)
        assert bounded_holds(query, db, bound=2)
        assert bounded_holds(query, db, bound=3)

    def test_log_bound(self):
        query = CXRPQ(
            [("s", "c", "x"), ("x", "w{a+}", "y"), ("y", "&w", "z"), ("z", "b", "t")]
        )
        db, _first, _last = path_database("caaaab")
        result = evaluate_log_bounded(query, db)
        assert result.boolean  # log2(|D|) >= 2 here

    def test_image_bound_from_query(self):
        query = CXRPQ(
            [("s", "c", "x"), ("x", "w{a+}", "y"), ("y", "&w", "z"), ("z", "b", "t")],
            image_bound=1,
        )
        db, _first, _last = path_database("caaaab")
        assert not evaluate_bounded(query, db).boolean
        assert evaluate_bounded(query.with_image_bound(2), db).boolean

    def test_blind_and_pruned_agree(self):
        query = CXRPQ([("x", "w{(a|b)+}", "y"), ("y", "&w", "z")], ("x", "z"))
        for seed in range(3):
            db = random_graph(6, 14, AB, seed=seed)
            blind = evaluate_bounded(query, db, bound=2, strategy="blind", boolean_short_circuit=False)
            pruned = evaluate_bounded(query, db, bound=2, strategy="pruned", boolean_short_circuit=False)
            assert blind.tuples == pruned.tuples

    def test_agrees_with_simple_engine_under_the_same_bound(self):
        query = CXRPQ([("x", "w{(a|b)+}c*", "y"), ("y", "&w", "z")], ("x", "z"))
        for seed in range(3):
            db = random_graph(6, 15, ABC, seed=seed)
            via_bounded = evaluate_bounded(query, db, bound=2, boolean_short_circuit=False)
            via_simple = evaluate_simple(query, db, image_bound=2, boolean_short_circuit=False)
            assert via_bounded.tuples == via_simple.tuples

    def test_crpq_subsumption(self):
        # CRPQ ⊆ CXRPQ^<=k: a query without variables is unaffected by the bound.
        query = CXRPQ([("x", "a+b", "y")], ("x", "y"))
        db, first, last = path_database("aab")
        result = evaluate_bounded(query, db, bound=1)
        assert (first, last) in result.tuples

    def test_non_boolean_union_semantics(self):
        query = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w", "z")], ("x", "z"))
        db = GraphDatabase.from_edges([(0, "a", 1), (1, "a", 2), (0, "b", 3), (3, "b", 4), (1, "b", 5)])
        result = evaluate_bounded(query, db, bound=1, boolean_short_circuit=False)
        assert result.tuples == {(0, 2), (0, 4)}


class TestAgainstOracle:
    def test_oracle_within_bound(self):
        query = CXRPQ([("x", "w{a+}", "y"), ("y", "&w b", "z")], ("x", "z"))
        for seed in range(3):
            db = random_graph(5, 12, AB, seed=seed)
            bounded = evaluate_bounded(query, db, bound=2, boolean_short_circuit=False)
            oracle = evaluate_generic(query, db, max_path_length=3, max_image_length=2)
            assert oracle.tuples <= bounded.tuples
