"""Shared helpers for the test suite: random generators and cross-validation."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.alphabet import Alphabet
from repro.regex import syntax as rx

#: A small alphabet used throughout the tests.
AB = Alphabet("ab")
ABC = Alphabet("abc")


def random_classical_regex(rng: random.Random, symbols: str = "ab", depth: int = 3) -> rx.Xregex:
    """A random classical regular expression of bounded depth."""
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.75:
            return rx.Symbol(rng.choice(symbols))
        if choice < 0.9:
            return rx.EPSILON
        return rx.SymbolClass(frozenset(rng.sample(symbols, rng.randint(1, len(symbols)))))
    operator = rng.choice(["concat", "alt", "star", "plus", "opt"])
    if operator == "concat":
        return rx.concat(
            random_classical_regex(rng, symbols, depth - 1),
            random_classical_regex(rng, symbols, depth - 1),
        )
    if operator == "alt":
        return rx.alternation(
            random_classical_regex(rng, symbols, depth - 1),
            random_classical_regex(rng, symbols, depth - 1),
        )
    inner = random_classical_regex(rng, symbols, depth - 1)
    if operator == "star":
        return rx.star(inner)
    if operator == "plus":
        return rx.plus(inner)
    return rx.optional(inner)


def random_vstar_free_xregex(
    rng: random.Random,
    variables: Sequence[str],
    symbols: str = "ab",
    depth: int = 3,
    allow_defs: bool = True,
) -> rx.Xregex:
    """A random variable-star free xregex using the given variables.

    Definitions only appear at alternation-free positions to keep the result
    sequential with high probability; callers should still validate.
    """
    if depth <= 0:
        if variables and rng.random() < 0.4:
            return rx.VarRef(rng.choice(list(variables)))
        return rx.Symbol(rng.choice(symbols))
    roll = rng.random()
    if roll < 0.25:
        return rx.concat(
            random_vstar_free_xregex(rng, variables, symbols, depth - 1, allow_defs),
            random_vstar_free_xregex(rng, variables, symbols, depth - 1, allow_defs),
        )
    if roll < 0.4:
        return rx.alternation(
            random_vstar_free_xregex(rng, variables, symbols, depth - 1, allow_defs=False),
            random_vstar_free_xregex(rng, variables, symbols, depth - 1, allow_defs=False),
        )
    if roll < 0.55:
        return rx.star(random_classical_regex(rng, symbols, depth - 1))
    if roll < 0.7 and allow_defs and variables:
        name = rng.choice(list(variables))
        body = random_classical_regex(rng, symbols, depth - 1)
        return rx.VarDef(name, body)
    if roll < 0.8 and variables:
        return rx.VarRef(rng.choice(list(variables)))
    return rx.Symbol(rng.choice(symbols))


def words_up_to(symbols: str, length: int) -> List[str]:
    """All words over ``symbols`` up to the given length (test-sized)."""
    from repro.core.words import all_words_up_to

    return list(all_words_up_to(Alphabet(symbols), length))
