"""Conjunctive xregex path queries (CXRPQ) — Definition 5, the paper's contribution.

A CXRPQ is a conjunctive path query whose edge labels, read in edge order,
form a conjunctive xregex.  String variables shared between edges express
inter-path dependencies that CRPQs cannot express.

Fragments
---------
* ``CXRPQ^vsf`` — variable-star free queries (Section 5),
* ``CXRPQ^vsf,fl`` — variable-star free queries with only flat variables
  (Section 5.3),
* ``CXRPQ^<=k`` — unrestricted syntax, but evaluation only considers matches
  whose variable images have length at most ``k`` (Section 6); represented
  here by the ``image_bound`` attribute,
* ``CXRPQ^log`` — image bound ``log |D|`` (Section 6.2); represented by
  ``image_bound="log"``.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence, Set, Tuple, Union

from repro.core.alphabet import Alphabet
from repro.queries.base import ConjunctivePathQuery
from repro.queries.pattern import GraphPattern
from repro.regex import syntax as rx
from repro.regex import properties as props
from repro.regex.conjunctive import ConjunctiveXregex
from repro.regex.parser import parse_xregex

LabelInput = Union[str, rx.Xregex]


class Fragment(enum.Enum):
    """The evaluation-relevant fragments of CXRPQ, ordered by generality."""

    CRPQ = "crpq"
    SIMPLE = "simple"
    VSF_FLAT = "vsf,fl"
    VSF = "vsf"
    GENERAL = "general"


class CXRPQ(ConjunctivePathQuery):
    """A conjunctive xregex path query."""

    __slots__ = ("image_bound", "_conjunctive")

    def __init__(
        self,
        edges: Iterable[Tuple[str, LabelInput, str]],
        output_variables: Sequence[str] = (),
        image_bound: Optional[Union[int, str]] = None,
    ):
        pattern = GraphPattern()
        labels = []
        for source, label, target in edges:
            expr = parse_xregex(label) if isinstance(label, str) else label
            labels.append(expr)
            pattern.add_edge(source, expr, target)
        super().__init__(pattern, output_variables)
        #: ``None`` for plain CXRPQ semantics, an ``int`` for ``CXRPQ^<=k``,
        #: or the string ``"log"`` for ``CXRPQ^log``.
        self.image_bound = image_bound
        self._conjunctive = ConjunctiveXregex(labels)

    # -- structure ----------------------------------------------------------------

    @property
    def conjunctive_xregex(self) -> ConjunctiveXregex:
        """The conjunctive xregex formed by the edge labels in edge order."""
        return self._conjunctive

    def xregexes(self) -> Tuple[rx.Xregex, ...]:
        """The edge xregex in edge order."""
        return self._conjunctive.components

    def variables(self) -> Set[str]:
        """All string variables used by the query."""
        return self._conjunctive.variables()

    def alphabet(self, database_alphabet: Optional[Alphabet] = None) -> Alphabet:
        """The terminal symbols used by the query (or the database alphabet)."""
        if database_alphabet is not None:
            return database_alphabet
        symbols = self._conjunctive.terminal_symbols()
        return Alphabet(symbols or {"a"})

    # -- semantics variants ----------------------------------------------------------

    def with_image_bound(self, bound: Union[int, str]) -> "CXRPQ":
        """The same query interpreted under ``CXRPQ^<=k`` (or ``CXRPQ^log``) semantics."""
        return CXRPQ(
            [(edge.source, edge.label, edge.target) for edge in self.pattern.edges],
            self.output_variables,
            image_bound=bound,
        )

    def resolve_image_bound(self, database_size: int) -> Optional[int]:
        """The concrete image bound for a database of the given size."""
        if self.image_bound is None:
            return None
        if self.image_bound == "log":
            import math

            return max(1, int(math.ceil(math.log2(max(2, database_size)))))
        return int(self.image_bound)

    # -- fragments ----------------------------------------------------------------------

    def is_crpq(self) -> bool:
        """True if no edge label uses string variables."""
        return self._conjunctive.is_classical()

    def is_vstar_free(self) -> bool:
        """True if the query belongs to ``CXRPQ^vsf``."""
        return self._conjunctive.is_vstar_free()

    def is_vstar_free_flat(self) -> bool:
        """True if the query belongs to ``CXRPQ^vsf,fl``."""
        return self.is_vstar_free() and self._conjunctive.has_only_flat_variables()

    def is_simple(self) -> bool:
        """True if every edge xregex is simple (directly evaluable via Lemma 3)."""
        return self._conjunctive.is_simple()

    def fragment(self) -> Fragment:
        """The most specific fragment this query belongs to."""
        if self.is_crpq():
            return Fragment.CRPQ
        if self.is_simple():
            return Fragment.SIMPLE
        if self.is_vstar_free_flat():
            return Fragment.VSF_FLAT
        if self.is_vstar_free():
            return Fragment.VSF
        return Fragment.GENERAL

    # -- conversions ------------------------------------------------------------------------

    def with_conjunctive_xregex(self, conjunctive: ConjunctiveXregex) -> "CXRPQ":
        """The query with its edge labels replaced component-wise (Proposition 2)."""
        if conjunctive.dimension != len(self.pattern.edges):
            raise ValueError("dimension mismatch between pattern and conjunctive xregex")
        edges = [
            (edge.source, label, edge.target)
            for edge, label in zip(self.pattern.edges, conjunctive.components)
        ]
        return CXRPQ(edges, self.output_variables, image_bound=self.image_bound)
