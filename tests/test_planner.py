"""Tests for the cost-based join planner (engine/planner.py).

Three angles:

* **unit** — ``_select_edge`` tie-breaking, forced-edge choice and the
  arm-capture semantics of :class:`JoinPlan`;
* **property** — planner v1 and v2 produce byte-identical answers on
  randomized all-lazy components (plans may differ, answers may not);
* **regression** — on the ``deep_chain`` adversarial family, v2 never
  materialises a larger forced relation than v1 (pinned through the
  planner's ``forced_pairs`` telemetry).
"""

import random

import pytest

from repro.engine.engine import evaluate
from repro.engine.joins import EdgeRelation, _select_edge, join_morphisms, semijoin_reduce
from repro.engine.planner import (
    JoinPlan,
    planner_stats,
    planner_v2_disabled,
    planner_v2_enabled,
    reset_planner_stats,
)
from repro.graphdb.cache import invalidate_cache, reachability_index
from repro.graphdb.generators import deep_chain, random_graph
from repro.queries.cxrpq import CXRPQ
from repro.regex.parser import parse_xregex

from helpers import ABC, PLANNER_ARMS, compiled, stringified


def lazy_relation(db, pattern: str):
    """An unmaterialised CSR-backed relation over ``db``."""
    relation = reachability_index(db).relation(pattern if not isinstance(pattern, str) else compiled(pattern))
    assert not relation.materialised
    return relation


def answer_signature(result, has_output: bool) -> str:
    tuples = sorted(result.tuples, key=repr) if has_output else None
    return repr((result.boolean, tuples, result.exhaustive))


class TestSwitch:
    def test_default_is_v2(self):
        assert planner_v2_enabled()

    def test_context_manager_nests_and_restores(self):
        with planner_v2_disabled():
            assert not planner_v2_enabled()
            with planner_v2_disabled():
                assert not planner_v2_enabled()
            assert not planner_v2_enabled()
        assert planner_v2_enabled()

    def test_plan_captures_the_arm_at_construction(self):
        endpoints = [("x", "y")]
        relations = [EdgeRelation([(1, 2)])]
        with planner_v2_disabled():
            plan = JoinPlan(endpoints, relations)
        assert plan.v2 is False  # sticky: the flag flip after construction is ignored
        assert JoinPlan(endpoints, relations).v2 is True


class TestSelectEdge:
    def test_bound_edges_beat_half_bound_beat_unbound(self):
        endpoints = [("x", "y"), ("y", "z"), ("w", "v")]
        relations = [
            EdgeRelation([(1, 2)]),
            EdgeRelation([(2, 3), (2, 4)]),
            EdgeRelation([(5, 6)]),
        ]
        # x and y bound: edge 0 is fully bound and wins outright.
        assert _select_edge([0, 1, 2], endpoints, relations, {"x": 1, "y": 2}) == 0
        # Only y bound: edge 1 is half bound, edges 0/2 cost their sizes.
        assert _select_edge([1, 2], endpoints, relations, {"y": 2}) == 1

    def test_unbound_ties_break_on_remaining_order(self):
        endpoints = [("x", "y"), ("z", "w")]
        relations = [EdgeRelation([(1, 2)]), EdgeRelation([(3, 4)])]
        # Equal sizes, nothing bound: the first edge in ``remaining`` wins.
        assert _select_edge([0, 1], endpoints, relations, {}) == 0
        assert _select_edge([1, 0], endpoints, relations, {}) == 1

    def test_v2_prefers_the_estimated_cheaper_lazy_edge(self):
        db = deep_chain(40)
        dense = lazy_relation(db, "b+")
        rare = lazy_relation(db, "c")
        endpoints = [("x", "y"), ("z", "w")]
        # v2: statistics rank the rare 'c' relation below the hub 'b+' one.
        assert _select_edge([0, 1], endpoints, [dense, rare], {}) == 1
        # v1: both size_hint to n² — the tie breaks on remaining order.
        with planner_v2_disabled():
            assert _select_edge([0, 1], endpoints, [dense, rare], {}) == 0


class TestForcedEdge:
    def endpoints(self):
        return [("x", "y"), ("y", "z")]

    def test_v1_forces_the_lowest_index(self):
        db = deep_chain(40)
        relations = [lazy_relation(db, "b+"), lazy_relation(db, "c")]
        with planner_v2_disabled():
            plan = JoinPlan(self.endpoints(), relations)
            assert plan.forced_edge({0, 1}) == 0

    def test_v2_forces_the_estimated_cheapest(self):
        db = deep_chain(40)
        relations = [lazy_relation(db, "b+"), lazy_relation(db, "c")]
        plan = JoinPlan(self.endpoints(), relations)
        assert plan.forced_edge({0, 1}) == 1

    def test_v2_ties_degrade_to_the_lowest_index(self):
        db = deep_chain(40)
        # Two relations over the same label have identical estimates.
        relations = [lazy_relation(db, "c"), lazy_relation(db, "c?c")]
        plan = JoinPlan(self.endpoints(), relations)
        costs = [plan.unbound_cost(0), plan.unbound_cost(1)]
        if costs[0] == costs[1]:
            assert plan.forced_edge({0, 1}) == 0

    def test_forced_pairs_telemetry_counts_the_materialisation(self):
        db = deep_chain(40)
        relations = [lazy_relation(db, "b+"), lazy_relation(db, "c")]
        reset_planner_stats()
        reduced = semijoin_reduce(self.endpoints(), relations)
        counters = planner_stats()
        assert counters["forced_materialisations"] == 1
        assert counters["forced_pairs"] == 3  # the three 'c' marker arcs
        # The reduction result is still correct: every surviving pair of the
        # b+ edge has a 'c' continuation.
        assert all(pair in relations[0].pairs for pair in reduced[0].pairs)


class TestPlannerEquivalence:
    """Property tests: v1 and v2 agree byte-for-byte; only the work differs."""

    def all_lazy_queries(self):
        # Every edge is a classical regex (a lazy CSR relation), no fixed
        # variables: exactly the all-lazy-component shape the forced-edge
        # logic exists for.  Mixed selectivities stress the estimate order.
        return [
            (((("x", "b+", "y"), ("y", "c", "z"))), ("x", "z")),
            (((("x", "(a|b)+", "y"), ("y", "c", "z"))), ()),
            (((("x", "a+", "y"), ("z", "c", "w"))), ("y", "z")),  # two components
            (((("x", "a*c", "y"), ("y", "b", "z"), ("z", "a", "w"))), ("x", "w")),
            (((("x", "(a|c)+", "x"), ("x", "b", "y"))), ("x", "y")),  # self-loop
        ]

    def test_identical_answers_on_randomized_all_lazy_components(self):
        rng = random.Random(20260808)
        graphs = [
            stringified(random_graph(10, 28, ABC, seed=seed)) for seed in (1, 2, 3)
        ]
        graphs.append(deep_chain(24, seed=1))
        cases = 0
        for db in graphs:
            for edges, output in self.all_lazy_queries():
                query = CXRPQ(
                    [(s, parse_xregex(r), t) for s, r, t in edges],
                    output_variables=output,
                )
                signatures = {}
                for name, arm in PLANNER_ARMS:
                    # A fresh index per arm: materialisation state must not
                    # leak between arms, or the second would plan over
                    # already-forced relations.
                    invalidate_cache(db)
                    with arm():
                        signatures[name] = answer_signature(
                            evaluate(query, db), bool(output)
                        )
                assert signatures["planner-v2"] == signatures["planner-v1"], (
                    f"planner arms diverge on {edges} over {db}"
                )
                cases += 1
        assert cases >= 20

    def test_identical_morphisms_through_join_morphisms(self):
        db = deep_chain(20)
        endpoints = [("x", "y"), ("y", "z")]
        per_arm = {}
        for name, arm in PLANNER_ARMS:
            invalidate_cache(db)
            with arm():
                index = reachability_index(db)
                relations = [index.relation(compiled("b+")), index.relation(compiled("c"))]
                per_arm[name] = sorted(
                    (m["x"], m["y"], m["z"])
                    for m in join_morphisms(
                        endpoints, relations, ["x", "y", "z"], list(db.nodes)
                    )
                )
        assert per_arm["planner-v2"] == per_arm["planner-v1"]
        assert per_arm["planner-v2"], "the workload must produce morphisms"


class TestDeepChainRegression:
    @pytest.mark.parametrize("length", [30, 60, 120])
    def test_v2_never_materialises_more_than_v1(self, length):
        db = deep_chain(length)
        query = CXRPQ(
            [("x", parse_xregex("b+"), "y"), ("y", parse_xregex("c"), "z")],
            output_variables=(),
        )
        forced = {}
        answers = {}
        for name, arm in PLANNER_ARMS:
            invalidate_cache(db)
            reset_planner_stats()
            with arm():
                answers[name] = evaluate(query, db, boolean_short_circuit=True).boolean
            forced[name] = planner_stats()["forced_pairs"]
        assert answers["planner-v2"] == answers["planner-v1"] is True
        assert forced["planner-v2"] <= forced["planner-v1"]
        # And on this family the gap is asymptotic, not incidental: v1
        # forces the near-quadratic hub relation, v2 the marker arcs.
        assert forced["planner-v1"] >= length
        assert forced["planner-v2"] <= 3
