"""Graph databases: directed, edge-labelled multigraphs over an alphabet.

A graph database (Section 2.2) is a pair ``D = (V_D, E_D)`` with
``E_D ⊆ V_D × Sigma × V_D``.  Nodes can be arbitrary hashable objects
(strings and integers in practice); labels are single-character symbols.
Paths of length 0 exist from every node to itself and are labelled by the
empty word, exactly as in the paper.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.alphabet import Alphabet
from repro.core.errors import AlphabetError, EvaluationError

Node = Hashable


@dataclass(frozen=True)
class Edge:
    """A single labelled arc ``(source, label, target)``."""

    source: Node
    label: str
    target: Node

    def __iter__(self) -> Iterator[Hashable]:
        return iter((self.source, self.label, self.target))


class GraphDatabase:
    """A directed, edge-labelled multigraph."""

    __slots__ = (
        "_nodes",
        "_edges",
        "_forward",
        "_backward",
        "_by_label",
        "_forward_by_label",
        "_edge_set",
        "_version",
        "_alphabet",
        "__weakref__",
    )

    def __init__(self, alphabet: Optional[Alphabet] = None) -> None:
        self._nodes: Set[Node] = set()
        self._edges: List[Edge] = []
        self._forward: Dict[Node, List[Tuple[str, Node]]] = defaultdict(list)
        self._backward: Dict[Node, List[Tuple[str, Node]]] = defaultdict(list)
        self._by_label: Dict[str, List[Tuple[Node, Node]]] = defaultdict(list)
        self._forward_by_label: Dict[Node, Dict[str, List[Node]]] = {}
        self._edge_set: Set[Tuple[Node, str, Node]] = set()
        self._version: int = 0
        self._alphabet = alphabet

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, str, Node]],
        alphabet: Optional[Alphabet] = None,
    ) -> "GraphDatabase":
        """Build a database from an iterable of ``(source, label, target)`` triples."""
        database = cls(alphabet)
        for source, label, target in edges:
            database.add_edge(source, label, target)
        return database

    def add_node(self, node: Node) -> Node:
        """Add an isolated node (no-op if it already exists)."""
        if node not in self._nodes:
            self._nodes.add(node)
            self._version += 1
        return node

    def add_edge(self, source: Node, label: str, target: Node) -> Edge:
        """Add an arc labelled with a single symbol."""
        if not isinstance(label, str) or len(label) != 1:
            raise AlphabetError(
                f"edge labels must be single symbols, got {label!r}; "
                "use add_word_path for longer labels"
            )
        if self._alphabet is not None and label not in self._alphabet:
            raise AlphabetError(f"label {label!r} is not in the declared alphabet")
        edge = Edge(source, label, target)
        self._nodes.add(source)
        self._nodes.add(target)
        self._edges.append(edge)
        self._forward[source].append((label, target))
        self._backward[target].append((label, source))
        self._by_label[label].append((source, target))
        self._forward_by_label.setdefault(source, {}).setdefault(label, []).append(target)
        self._edge_set.add((source, label, target))
        self._version += 1
        return edge

    def remove_edge(self, source: Node, label: str, target: Node) -> None:
        """Remove **one** occurrence of the arc ``(source, label, target)``.

        Databases are multigraphs, so parallel duplicates of the same triple
        are removed one at a time; the membership index only forgets the
        triple once the last occurrence is gone.  Nodes are never removed —
        an endpoint left without arcs stays as an isolated node, exactly as
        if it had been declared via :meth:`add_node`.  Raises
        :class:`ValueError` if no such arc exists (edge deltas validate
        against the live graph before mutating, see
        :mod:`repro.graphdb.delta`).
        """
        triple = (source, label, target)
        if triple not in self._edge_set:
            raise ValueError(
                f"cannot remove missing edge {source!r} -{label}-> {target!r}"
            )
        for position, edge in enumerate(self._edges):
            if edge.source == source and edge.label == label and edge.target == target:
                del self._edges[position]
                break
        self._forward[source].remove((label, target))
        if not self._forward[source]:
            del self._forward[source]
        self._backward[target].remove((label, source))
        if not self._backward[target]:
            del self._backward[target]
        self._by_label[label].remove((source, target))
        if not self._by_label[label]:
            del self._by_label[label]
        targets = self._forward_by_label[source][label]
        targets.remove(target)
        if not targets:
            del self._forward_by_label[source][label]
            if not self._forward_by_label[source]:
                del self._forward_by_label[source]
        if (source, target) not in self._by_label.get(label, ()):
            self._edge_set.discard(triple)
        self._version += 1

    def _ingest_edges(self, triples: Iterable[Tuple[Node, str, Node]]) -> None:
        """Bulk-append already-validated edges without bumping the version.

        Loader-internal (see :mod:`repro.graphdb.storage`): hydrating a
        snapshot-backed database materialises the edge indexes for arcs the
        version counter already accounts for, so caches keyed by the version
        (the preloaded CSR snapshot in particular) must stay valid.  Labels
        are trusted — they come from a snapshot that was written from a
        validated database — hence no alphabet checks and no per-edge method
        dispatch.
        """
        forward = self._forward
        backward = self._backward
        by_label = self._by_label
        forward_by_label = self._forward_by_label
        edge_set = self._edge_set
        nodes = self._nodes
        edges = self._edges
        for source, label, target in triples:
            nodes.add(source)
            nodes.add(target)
            edges.append(Edge(source, label, target))
            forward[source].append((label, target))
            backward[target].append((label, source))
            by_label[label].append((source, target))
            forward_by_label.setdefault(source, {}).setdefault(label, []).append(target)
            edge_set.add((source, label, target))

    def add_word_path(self, source: Node, word: str, target: Node, prefix: str = "_p") -> List[Node]:
        """Add a path from ``source`` to ``target`` labelled with ``word``.

        For ``|word| >= 2`` fresh intermediate nodes are created (named from
        ``prefix``); the paper uses this convention when it labels arcs with
        short words such as ``##`` in the Theorem 1 construction.  Returns the
        list of intermediate nodes.
        """
        if word == "":
            raise EvaluationError(
                "graph databases have no epsilon edges; an empty word is only "
                "realised by the trivial path from a node to itself"
            )
        intermediates: List[Node] = []
        current = source
        for index, symbol in enumerate(word):
            is_last = index == len(word) - 1
            nxt = target if is_last else f"{prefix}:{source}->{target}:{len(self._edges)}:{index}"
            if not is_last:
                intermediates.append(nxt)
            self.add_edge(current, symbol, nxt)
            current = nxt
        return intermediates

    # -- inspection ----------------------------------------------------------------

    @property
    def nodes(self) -> Set[Node]:
        """The set of nodes."""
        return self._nodes

    @property
    def edges(self) -> Sequence[Edge]:
        """All arcs, in insertion order."""
        return self._edges

    def num_nodes(self) -> int:
        return len(self._nodes)

    def num_edges(self) -> int:
        return len(self._edges)

    def size(self) -> int:
        """The size measure ``|D|`` (number of nodes plus number of arcs)."""
        return len(self._nodes) + len(self._edges)

    def alphabet(self) -> Alphabet:
        """The declared alphabet, or the set of labels actually used."""
        if self._alphabet is not None:
            return self._alphabet
        labels = set(self._by_label)
        if not labels:
            raise AlphabetError("the database has no edges and no declared alphabet")
        return Alphabet(labels)

    def successors(self, node: Node) -> Sequence[Tuple[str, Node]]:
        """Outgoing ``(label, target)`` pairs of ``node``."""
        return self._forward.get(node, ())

    def predecessors(self, node: Node) -> Sequence[Tuple[str, Node]]:
        """Incoming ``(label, source)`` pairs of ``node``."""
        return self._backward.get(node, ())

    def successors_by_label(self, node: Node, label: str) -> Sequence[Node]:
        """Targets of arcs labelled ``label`` leaving ``node`` (O(1) lookup).

        The returned sequence is the internal index (shared, do not
        mutate); use :meth:`add_edge` to modify the graph.
        """
        by_label = self._forward_by_label.get(node)
        if by_label is None:
            return ()
        return by_label.get(label, ())

    def labelled_successors(self, node: Node) -> Dict[str, List[Node]]:
        """The ``label -> targets`` adjacency of ``node`` (shared, do not mutate)."""
        return self._forward_by_label.get(node, {})

    def edges_by_label(self, label: str) -> Sequence[Tuple[Node, Node]]:
        """All ``(source, target)`` pairs connected by an arc labelled ``label``."""
        return self._by_label.get(label, ())

    def has_edge(self, source: Node, label: str, target: Node) -> bool:
        """O(1) membership test backed by the edge-set index."""
        return (source, label, target) in self._edge_set

    @property
    def version(self) -> int:
        """A counter bumped on every mutation; used for cache invalidation."""
        return self._version

    def out_degree(self, node: Node) -> int:
        return len(self._forward.get(node, ()))

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return f"GraphDatabase(nodes={self.num_nodes()}, edges={self.num_edges()})"

    # -- path queries -----------------------------------------------------------------

    def path_exists(self, source: Node, word: str, target: Node) -> bool:
        """True if a path from ``source`` to ``target`` labelled ``word`` exists."""
        current = {source} if source in self._nodes else set()
        for symbol in word:
            nxt: Set[Node] = set()
            for node in current:
                nxt.update(self.successors_by_label(node, symbol))
            current = nxt
            if not current:
                return False
        return target in current

    def nodes_reached_by(self, source: Node, word: str) -> Set[Node]:
        """All nodes reachable from ``source`` by a path labelled ``word``."""
        current = {source} if source in self._nodes else set()
        for symbol in word:
            nxt: Set[Node] = set()
            for node in current:
                nxt.update(self.successors_by_label(node, symbol))
            current = nxt
        return current

    # -- conversions --------------------------------------------------------------------

    def to_networkx(self) -> "Any":
        """Export as a ``networkx.MultiDiGraph`` with ``label`` edge attributes."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self._nodes)
        for edge in self._edges:
            graph.add_edge(edge.source, edge.target, label=edge.label)
        return graph

    def to_json(self) -> str:
        """Serialise the database to a JSON string (nodes as strings)."""
        payload = {
            "nodes": [repr(node) for node in sorted(self._nodes, key=repr)],
            "edges": [[repr(edge.source), edge.label, repr(edge.target)] for edge in self._edges],
        }
        return json.dumps(payload, indent=2)

    def relabel(self) -> Tuple["GraphDatabase", Dict[Node, int]]:
        """Return a copy with nodes renamed to consecutive integers."""
        mapping = {node: index for index, node in enumerate(sorted(self._nodes, key=repr))}
        renamed = GraphDatabase(self._alphabet)
        for node in self._nodes:
            renamed.add_node(mapping[node])
        for edge in self._edges:
            renamed.add_edge(mapping[edge.source], edge.label, mapping[edge.target])
        return renamed, mapping

    def copy(self) -> "GraphDatabase":
        """A shallow copy of the database."""
        clone = GraphDatabase(self._alphabet)
        for node in self._nodes:
            clone.add_node(node)
        for edge in self._edges:
            clone.add_edge(edge.source, edge.label, edge.target)
        return clone

    def union(self, other: "GraphDatabase") -> "GraphDatabase":
        """The node-disjointness-agnostic union of two databases."""
        merged = self.copy()
        for node in other.nodes:
            merged.add_node(node)
        for edge in other.edges:
            merged.add_edge(edge.source, edge.label, edge.target)
        return merged
