"""The common shape of conjunctive path queries ``q = z̄ <- G_q`` (Section 2.3)."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.errors import EvaluationError
from repro.queries.pattern import GraphPattern


class ConjunctivePathQuery:
    """A conjunctive path query: a graph pattern plus a tuple of output variables.

    A Boolean query has an empty output tuple; evaluating it on a database
    yields either ``{()}`` (``D |= q``) or the empty set (``D |/= q``).
    """

    __slots__ = ("pattern", "output_variables")

    def __init__(self, pattern: GraphPattern, output_variables: Sequence[str] = ()):
        self.pattern = pattern
        self.output_variables: Tuple[str, ...] = tuple(output_variables)
        missing = [node for node in self.output_variables if node not in pattern.nodes]
        if missing:
            raise EvaluationError(
                f"output variables {missing} do not occur in the graph pattern"
            )

    # -- basic shape -----------------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        """True if the query has no output variables."""
        return not self.output_variables

    @property
    def edges(self):
        """The pattern edges in the order that fixes the conjunctive xregex."""
        return self.pattern.edges

    @property
    def nodes(self):
        """The node variables of the pattern."""
        return self.pattern.nodes

    def is_single_edge(self) -> bool:
        """True for single-edge queries."""
        return self.pattern.is_single_edge()

    def size(self) -> int:
        """A syntactic size measure ``|q|``: pattern nodes plus label sizes."""
        total = self.pattern.num_nodes()
        for edge in self.pattern.edges:
            label = edge.label
            total += label.size() if hasattr(label, "size") else 1
        return total

    def __repr__(self) -> str:
        head = ", ".join(self.output_variables) if self.output_variables else ""
        return f"{type(self).__name__}(({head}) <- {self.pattern!r})"
