"""Backtracking join of per-edge relations into matching morphisms.

Every evaluation algorithm of the paper ultimately searches for a matching
morphism ``h`` from the pattern nodes to the database nodes such that each
edge's endpoints land in a per-edge relation (plus, for CXRPQ/ECRPQ,
additional synchronisation constraints).  This module implements that search
once: a greedy, index-backed backtracking join.

Planning decisions — which edge to bind next, which deferred lazy edge an
all-lazy component forces, and which direction a lazy edge expands from —
are delegated to an explicit :class:`repro.engine.planner.JoinPlan` built
once per join.  The plan's costs come from per-database cardinality
statistics (planner v2, the default); the previous inline heuristics remain
available behind :func:`repro.engine.planner.planner_v2_disabled`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.engine.planner import JoinPlan

Node = Hashable

#: Shared immutable empty row, handed out for every miss instead of a fresh
#: ``set()`` allocation inside the innermost backtracking loop.
_EMPTY_NODES: FrozenSet[Node] = frozenset()


class EdgeRelation:
    """A binary relation over database nodes with hash indexes on both columns.

    The row indexes hold **frozen** sets: ``targets_of``/``sources_of`` hand
    them out directly (no defensive copy per call), and a caller that tries
    to mutate a returned row gets an ``AttributeError`` instead of silently
    corrupting the index for every later lookup.  Callers that need a
    mutable set make their own copy on demand.
    """

    #: Eager relations always hold their full pair set; the lazy CSR-backed
    #: relation (:class:`repro.graphdb.cache.LazyRelation`) overrides this.
    materialised = True

    __slots__ = ("pairs", "by_source", "by_target")

    def __init__(self, pairs: Iterable[Tuple[Node, Node]]):
        self.pairs: Set[Tuple[Node, Node]] = set(pairs)
        by_source: Dict[Node, Set[Node]] = {}
        by_target: Dict[Node, Set[Node]] = {}
        for source, target in self.pairs:
            by_source.setdefault(source, set()).add(target)
            by_target.setdefault(target, set()).add(source)
        self.by_source: Dict[Node, FrozenSet[Node]] = {
            source: frozenset(targets) for source, targets in by_source.items()
        }
        self.by_target: Dict[Node, FrozenSet[Node]] = {
            target: frozenset(sources) for target, sources in by_target.items()
        }

    def __contains__(self, pair: Tuple[Node, Node]) -> bool:
        return pair in self.pairs

    def __len__(self) -> int:
        return len(self.pairs)

    def size_hint(self) -> int:
        """The cost-model size (exact for eager relations)."""
        return len(self.pairs)

    def targets_of(self, source: Node) -> FrozenSet[Node]:
        return self.by_source.get(source, _EMPTY_NODES)

    def sources_of(self, target: Node) -> FrozenSet[Node]:
        return self.by_target.get(target, _EMPTY_NODES)


def semijoin_reduce(
    edge_endpoints: Sequence[Tuple[str, str]],
    edge_relations: Sequence[EdgeRelation],
    fixed: Optional[Dict[str, Node]] = None,
    plan: Optional[JoinPlan] = None,
) -> List[EdgeRelation]:
    """Restrict each relation by its neighbours before backtracking.

    Classic semi-join pre-pruning: the admissible domain of every pattern
    variable is the intersection, over its incident edges, of the matching
    relation column (seeded by ``fixed``); relations are filtered down to
    pairs whose endpoints survive, and the process iterates to a fixpoint.
    Self-loop edges (``source == target``) are restricted to the diagonal up
    front.  The result enumerates exactly the same complete morphisms, but
    the backtracking search touches far fewer dead branches.  Relations that
    lose no pairs are returned as the original objects (identity preserved).

    Two refinements over the naive fixpoint loop:

    * **dirty-variable worklist** — after the initial pass, an edge is only
      refiltered when one of its incident variables' domains actually
      shrank, instead of refiltering every edge's whole pair set per round;
    * **lazy relations stay lazy** — an unmaterialised CSR-backed relation
      (``relation.materialised`` is ``False``) enters the fixpoint only
      once one of its endpoint domains is known, and is then expanded *from
      that domain* with per-source rows — **backward** (``sources_of``, the
      reversed product search) or forward, as chosen by the plan's
      estimated frontier costs.  Only when no domain ever becomes available
      (a pattern component with no fixed variable and no eager edge) is a
      single lazy edge — the one the plan estimates cheapest to materialise
      — forced to its full pair set per component, and the domains it
      yields activate its neighbours row-wise.
    """
    if not edge_endpoints:
        return list(edge_relations)
    if plan is None:
        plan = JoinPlan(edge_endpoints, edge_relations)
    count = len(edge_endpoints)
    domains: Dict[str, Set[Node]] = {
        variable: {value} for variable, value in (fixed or {}).items()
    }
    edges_of_variable: Dict[str, List[int]] = {}
    for index, (source, target) in enumerate(edge_endpoints):
        edges_of_variable.setdefault(source, []).append(index)
        if target != source:
            edges_of_variable.setdefault(target, []).append(index)

    # ``None`` marks a lazy edge whose expansion is still deferred.
    pairs_per_edge: List[Optional[Set[Tuple[Node, Node]]]] = [None] * count
    deferred: Set[int] = set()

    pending: deque = deque()
    in_pending: Set[str] = set()

    def mark_dirty(variable: str) -> None:
        if variable not in in_pending:
            in_pending.add(variable)
            pending.append(variable)

    def update_domains(index: int) -> None:
        source, target = edge_endpoints[index]
        pairs = pairs_per_edge[index]
        for variable, column in (
            (source, {u for u, _ in pairs}),
            (target, {v for _, v in pairs}),
        ):
            previous = domains.get(variable)
            if previous is None:
                domains[variable] = column
                mark_dirty(variable)
            elif not previous <= column:
                domains[variable] = previous & column
                mark_dirty(variable)

    def filter_edge(index: int) -> None:
        source, target = edge_endpoints[index]
        domain_source = domains.get(source)
        domain_target = domains.get(target)
        pairs = pairs_per_edge[index]
        filtered = {
            (u, v)
            for u, v in pairs
            if (source != target or u == v)
            and (domain_source is None or u in domain_source)
            and (domain_target is None or v in domain_target)
        }
        pairs_per_edge[index] = filtered
        update_domains(index)

    def activate_lazy(index: int) -> None:
        """Expand a deferred lazy edge from its known endpoint domain(s).

        The expansion direction is the plan's call: with one bound side
        there is no choice; with both bound, planner v2 compares the
        estimated frontiers (domain size × direction-aware expected
        fanout), v1 simply the domain sizes.  ``sources_of`` rows run the
        backward product search over the reversed CSR arrays.
        """
        relation = edge_relations[index]
        source, target = edge_endpoints[index]
        domain_source = domains.get(source)
        domain_target = domains.get(target)
        if source == target:
            pairs = {
                (value, value)
                for value in domain_source
                if value in relation.targets_of(value)
            }
        elif plan.activation_direction(index, domain_source, domain_target) == "forward":
            pairs = {
                (u, v)
                for u in domain_source
                for v in relation.targets_of(u)
                if domain_target is None or v in domain_target
            }
        else:
            pairs = {
                (u, v)
                for v in domain_target
                for u in relation.sources_of(v)
                if domain_source is None or u in domain_source
            }
        deferred.discard(index)
        pairs_per_edge[index] = pairs
        update_domains(index)

    # Initial pass: eager (or already materialised) edges are filtered once;
    # lazy edges whose endpoints have no domain yet are deferred.
    for index, relation in enumerate(edge_relations):
        source, target = edge_endpoints[index]
        if not getattr(relation, "materialised", True) and not (
            source in domains or target in domains
        ):
            deferred.add(index)
            continue
        if getattr(relation, "materialised", True):
            pairs_per_edge[index] = relation.pairs
            filter_edge(index)
        else:
            activate_lazy(index)

    while True:
        while pending:
            variable = pending.popleft()
            in_pending.discard(variable)
            for index in edges_of_variable.get(variable, ()):
                if index in deferred:
                    activate_lazy(index)
                elif pairs_per_edge[index] is not None:
                    filter_edge(index)
        if not deferred:
            break
        # A pattern component made solely of lazy edges with no fixed
        # variable: force exactly one edge — the plan's estimated-cheapest
        # relation — whose columns then activate the rest of the component
        # row-wise through the worklist (the forced edge's endpoints had no
        # domains, so ``update_domains`` necessarily creates them and marks
        # both variables dirty).
        forced = plan.forced_edge(deferred)
        deferred.discard(forced)
        pairs_per_edge[forced] = edge_relations[forced].pairs
        plan.note_forced(len(pairs_per_edge[forced]))
        filter_edge(forced)

    reduced: List[EdgeRelation] = []
    for pairs, relation in zip(pairs_per_edge, edge_relations):
        # The identity check would force an unmaterialised lazy relation to
        # its full pair set — compare only when the pairs already exist.
        if getattr(relation, "materialised", True) and pairs == relation.pairs:
            reduced.append(relation)
        else:
            reduced.append(EdgeRelation(pairs))
    return reduced


def join_morphisms(
    edge_endpoints: Sequence[Tuple[str, str]],
    edge_relations: Sequence[EdgeRelation],
    pattern_nodes: Sequence[str],
    database_nodes: Sequence[Node],
    fixed: Optional[Dict[str, Node]] = None,
    check: Optional[Callable[[Dict[str, Node]], bool]] = None,
    prune: bool = True,
) -> Iterator[Dict[str, Node]]:
    """Enumerate all morphisms consistent with the per-edge relations.

    Parameters
    ----------
    edge_endpoints:
        ``(source_variable, target_variable)`` per edge.
    edge_relations:
        The admissible node pairs per edge, positionally aligned with
        ``edge_endpoints``.
    pattern_nodes:
        Every node variable of the pattern (including isolated ones).
    database_nodes:
        The nodes of the database (candidates for isolated variables).
    fixed:
        A partial assignment that every produced morphism must extend
        (used by the Check problem, where the output tuple is given).
    check:
        An optional predicate evaluated on each complete assignment; only
        assignments passing the predicate are yielded (used for string
        variable synchronisation and relation constraints).
    prune:
        Apply :func:`semijoin_reduce` before searching (default).  The set
        of produced morphisms is identical either way.
    """
    if len(edge_endpoints) != len(edge_relations):
        raise ValueError("edge_endpoints and edge_relations must have equal length")
    assignment: Dict[str, Node] = dict(fixed or {})
    unknown = [node for node in assignment if node not in pattern_nodes]
    if unknown:
        raise ValueError(f"fixed assignment mentions unknown pattern nodes {unknown}")
    if prune:
        edge_relations = semijoin_reduce(
            edge_endpoints,
            edge_relations,
            fixed,
            plan=JoinPlan(edge_endpoints, edge_relations),
        )
    # The backtracking phase plans over the (possibly reduced) relations —
    # the reduction replaces pair sets, so pre-reduction estimates are stale.
    plan = JoinPlan(edge_endpoints, edge_relations)
    remaining = list(range(len(edge_endpoints)))
    yield from _extend(
        assignment,
        remaining,
        edge_endpoints,
        edge_relations,
        pattern_nodes,
        database_nodes,
        check,
        plan,
    )


def _select_edge(
    remaining: List[int],
    edge_endpoints: Sequence[Tuple[str, str]],
    edge_relations: Sequence[EdgeRelation],
    assignment: Dict[str, Node],
    plan: Optional[JoinPlan] = None,
) -> int:
    """Pick the remaining edge with the smallest estimated branching cost.

    The cost model counts the *candidate-domain size* the edge would branch
    over given the current partial assignment — the exact indexed fan-out of
    the bound endpoint for half-bound edges — rather than the raw relation
    size alone.  Fully bound edges cost nothing (a membership check that can
    only prune), half-bound edges cost their column fan-out, unbound edges
    cost the plan's estimated relation cardinality (planner v2: a
    statistics sketch for unmaterialised lazy relations, exact otherwise;
    v1: the raw ``size_hint``, a pessimistic ``n²`` for lazy relations, so
    binding goes through already-materialised edges first).  Ties break on
    the position in ``remaining``, keeping the selection deterministic;
    relation sizes only enter through the actual domains, which keeps the
    semi-join pre-pruning from shifting the search into a worse region (the
    thm2 @ 160 nodes regression).

    For a target-bound edge the fan-out probe *is* the backward product
    search: a lazy relation's ``sources_of`` row runs over the reversed CSR
    arrays with the reversed NFA, and the memoised row is then reused by
    the expansion itself — the planner chooses the search direction simply
    by which endpoint is bound.
    """
    if plan is None:
        plan = JoinPlan(edge_endpoints, edge_relations)
    best_index = remaining[0]
    best_cost: Optional[Tuple[int, int]] = None
    for index in remaining:
        source, target = edge_endpoints[index]
        relation = edge_relations[index]
        source_value = assignment.get(source)
        target_value = assignment.get(target)
        if source_value is not None and target_value is not None:
            cost = (0, 0)
        elif source_value is not None:
            cost = (1, len(relation.targets_of(source_value)))
        elif target_value is not None:
            cost = (1, len(relation.sources_of(target_value)))
        else:
            cost = (2, plan.unbound_cost(index))
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
            if cost == (0, 0):
                break
    return best_index


def _extend(
    assignment: Dict[str, Node],
    remaining: List[int],
    edge_endpoints: Sequence[Tuple[str, str]],
    edge_relations: Sequence[EdgeRelation],
    pattern_nodes: Sequence[str],
    database_nodes: Sequence[Node],
    check: Optional[Callable[[Dict[str, Node]], bool]],
    plan: Optional[JoinPlan] = None,
) -> Iterator[Dict[str, Node]]:
    if plan is None:
        plan = JoinPlan(edge_endpoints, edge_relations)
    if not remaining:
        # Assign any pattern nodes that occur in no edge.
        unassigned = [node for node in pattern_nodes if node not in assignment]
        yield from _assign_isolated(assignment, unassigned, database_nodes, check)
        return
    index = _select_edge(remaining, edge_endpoints, edge_relations, assignment, plan)
    rest = [edge for edge in remaining if edge != index]
    source, target = edge_endpoints[index]
    relation = edge_relations[index]
    source_value = assignment.get(source)
    target_value = assignment.get(target)
    if source_value is not None and target_value is not None:
        if (source_value, target_value) in relation:
            yield from _extend(assignment, rest, edge_endpoints, edge_relations, pattern_nodes, database_nodes, check, plan)
        return
    if source_value is not None:
        candidates = relation.targets_of(source_value)
        if source == target:
            candidates = candidates & {source_value}
        for candidate in sorted(candidates, key=repr):
            assignment[target] = candidate
            yield from _extend(assignment, rest, edge_endpoints, edge_relations, pattern_nodes, database_nodes, check, plan)
            del assignment[target]
        return
    if target_value is not None:
        candidates = relation.sources_of(target_value)
        for candidate in sorted(candidates, key=repr):
            assignment[source] = candidate
            yield from _extend(assignment, rest, edge_endpoints, edge_relations, pattern_nodes, database_nodes, check, plan)
            del assignment[source]
        return
    for pair_source, pair_target in sorted(relation.pairs, key=repr):
        if source == target and pair_source != pair_target:
            continue
        assignment[source] = pair_source
        assignment[target] = pair_target
        yield from _extend(assignment, rest, edge_endpoints, edge_relations, pattern_nodes, database_nodes, check, plan)
        if source != target:
            del assignment[target]
        del assignment[source]


def _assign_isolated(
    assignment: Dict[str, Node],
    unassigned: List[str],
    database_nodes: Sequence[Node],
    check: Optional[Callable[[Dict[str, Node]], bool]],
) -> Iterator[Dict[str, Node]]:
    if not unassigned:
        if check is None or check(assignment):
            yield dict(assignment)
        return
    node = unassigned[0]
    for candidate in sorted(database_nodes, key=repr):
        assignment[node] = candidate
        yield from _assign_isolated(assignment, unassigned[1:], database_nodes, check)
        del assignment[node]
