"""Graph patterns: the syntactic skeleton of every conjunctive path query.

An ``<``-graph pattern (Section 2.3) is a directed, edge-labelled graph whose
nodes are node variables and whose edge labels are language descriptors
(classical regular expressions for CRPQs, xregex for CXRPQs).  The pattern
does not interpret its labels; the query classes do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.core.errors import EvaluationError


@dataclass(frozen=True)
class PatternEdge:
    """An edge ``(source, label, target)`` of a graph pattern."""

    source: str
    label: Any
    target: str

    def __iter__(self):
        return iter((self.source, self.label, self.target))


class GraphPattern:
    """A directed, edge-labelled graph over node variables."""

    __slots__ = ("_edges", "_nodes")

    def __init__(self, edges: Iterable[Tuple[str, Any, str]] = ()):
        self._edges: List[PatternEdge] = []
        self._nodes: List[str] = []
        for source, label, target in edges:
            self.add_edge(source, label, target)

    def add_node(self, node: str) -> str:
        """Add an isolated node variable."""
        if node not in self._nodes:
            self._nodes.append(node)
        return node

    def add_edge(self, source: str, label: Any, target: str) -> PatternEdge:
        """Add an edge labelled with an arbitrary language descriptor."""
        edge = PatternEdge(source, label, target)
        self._edges.append(edge)
        self.add_node(source)
        self.add_node(target)
        return edge

    @property
    def edges(self) -> Sequence[PatternEdge]:
        """All edges in insertion order (the order fixes the conjunctive xregex)."""
        return self._edges

    @property
    def nodes(self) -> List[str]:
        """All node variables in first-seen order."""
        return list(self._nodes)

    def num_edges(self) -> int:
        return len(self._edges)

    def num_nodes(self) -> int:
        return len(self._nodes)

    def labels(self) -> List[Any]:
        """The edge labels in edge order."""
        return [edge.label for edge in self._edges]

    def is_single_edge(self) -> bool:
        """True for single-edge patterns (as used by several hardness results)."""
        return len(self._edges) == 1

    def with_labels(self, labels: Sequence[Any]) -> "GraphPattern":
        """A copy of the pattern with the edge labels replaced position-wise."""
        if len(labels) != len(self._edges):
            raise EvaluationError(
                f"expected {len(self._edges)} labels, got {len(labels)}"
            )
        pattern = GraphPattern()
        for node in self._nodes:
            pattern.add_node(node)
        for edge, label in zip(self._edges, labels):
            pattern.add_edge(edge.source, label, edge.target)
        return pattern

    def adjacency(self) -> Dict[str, Set[str]]:
        """Node adjacency ignoring direction (used for join ordering heuristics)."""
        adjacency: Dict[str, Set[str]] = {node: set() for node in self._nodes}
        for edge in self._edges:
            adjacency[edge.source].add(edge.target)
            adjacency[edge.target].add(edge.source)
        return adjacency

    def is_acyclic_undirected(self) -> bool:
        """True if the underlying undirected multigraph is a forest."""
        parent: Dict[str, str] = {node: node for node in self._nodes}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for edge in self._edges:
            root_a, root_b = find(edge.source), find(edge.target)
            if root_a == root_b:
                return False
            parent[root_a] = root_b
        return True

    def __iter__(self) -> Iterator[PatternEdge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        rendered = ", ".join(
            f"({edge.source} -[{edge.label}]-> {edge.target})" for edge in self._edges
        )
        return f"GraphPattern({rendered})"
