"""Translations between query classes (Section 7, Lemmas 12–14).

These constructions witness the inclusions of Figure 5:

* every CRPQ is a CXRPQ (and may be interpreted as ``CXRPQ^<=k`` for any k),
* every ECRPQ^er is expressible as a ``CXRPQ^vsf,fl`` (Lemma 12),
* every ``CXRPQ^vsf`` is expressible as a union of ECRPQ^er (Lemma 13),
* every ``CXRPQ^<=k`` is expressible as a union of CRPQs (Lemma 14).
"""

from repro.translations.into_cxrpq import crpq_to_cxrpq, ecrpq_er_to_cxrpq
from repro.translations.from_cxrpq import (
    cxrpq_vsf_to_union_ecrpq,
    cxrpq_bounded_to_union_crpq,
)

__all__ = [
    "crpq_to_cxrpq",
    "ecrpq_er_to_cxrpq",
    "cxrpq_vsf_to_union_ecrpq",
    "cxrpq_bounded_to_union_crpq",
]
