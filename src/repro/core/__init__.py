"""Core utilities shared by every subsystem: alphabets, words and errors."""

from repro.core.alphabet import Alphabet
from repro.core.errors import (
    ReproError,
    AlphabetError,
    XregexSyntaxError,
    XregexSemanticsError,
    FragmentError,
    EvaluationError,
)
from repro.core.words import all_words_up_to, is_word_over

__all__ = [
    "Alphabet",
    "ReproError",
    "AlphabetError",
    "XregexSyntaxError",
    "XregexSemanticsError",
    "FragmentError",
    "EvaluationError",
    "all_words_up_to",
    "is_word_over",
]
