"""E-ABL — ablations over the design choices called out in DESIGN.md.

Two ablations:

* the same vsf,fl query evaluated through its three semantically equivalent
  routes — the decomposed Lemma 3 engine, the Theorem 6 image-enumeration
  engine, and the Lemma 13 translation to a union of ECRPQ^er — quantifying
  the cost of the "compile to a classical formalism" detours the paper
  discusses in Section 7.1;
* normal-form precomputation on/off for the vsf engine (the query-constant
  treatment behind the data-complexity view of Theorem 2).
"""

import pytest

from repro.core.alphabet import Alphabet
from repro.engine.bounded import evaluate_bounded
from repro.engine.engine import evaluate_union
from repro.engine.normal_form import normal_form
from repro.engine.vsf import evaluate_vsf
from repro.queries import CXRPQ
from repro.translations import cxrpq_vsf_to_union_ecrpq

from benchmarks.common import cached_random_db, print_table

ABC = Alphabet("abc")
_QUERY = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w|c", "z")], ("x", "z"))
_UNION = cxrpq_vsf_to_union_ecrpq(_QUERY, ABC)
_NORMAL_FORM = normal_form(_QUERY.conjunctive_xregex)
_DB_NODES = 40


@pytest.mark.parametrize("route", ["vsf_engine", "bounded_engine", "union_of_ecrpq"])
def test_equivalent_routes(benchmark, route):
    db = cached_random_db(_DB_NODES, seed=19)

    def run():
        if route == "vsf_engine":
            return evaluate_vsf(_QUERY, db, boolean_short_circuit=False).tuples
        if route == "bounded_engine":
            return evaluate_bounded(_QUERY, db, bound=1, boolean_short_circuit=False).tuples
        return evaluate_union(_UNION, db, boolean_short_circuit=False).tuples

    tuples = benchmark.pedantic(run, rounds=2, iterations=1)
    reference = evaluate_bounded(_QUERY, db, bound=1, boolean_short_circuit=False).tuples
    assert tuples == reference


@pytest.mark.parametrize("precomputed", [True, False])
def test_normal_form_amortisation(benchmark, precomputed):
    db = cached_random_db(_DB_NODES, seed=19)

    def run():
        if precomputed:
            return evaluate_vsf(_QUERY, db, precomputed_normal_form=_NORMAL_FORM).boolean
        return evaluate_vsf(_QUERY, db).boolean

    assert isinstance(benchmark(run), bool)


def test_route_agreement_table(benchmark):
    def build_rows():
        db = cached_random_db(_DB_NODES, seed=19)
        vsf = evaluate_vsf(_QUERY, db, boolean_short_circuit=False).tuples
        bounded = evaluate_bounded(_QUERY, db, bound=1, boolean_short_circuit=False).tuples
        union = evaluate_union(_UNION, db, boolean_short_circuit=False).tuples
        return [
            ["vsf engine (Theorem 2)", len(vsf)],
            ["bounded engine (Theorem 6, k=1)", len(bounded)],
            ["union of ECRPQ^er (Lemma 13)", len(union)],
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table("Ablation — answer counts of the equivalent routes", ["route", "#answers"], rows)
    assert len({row[1] for row in rows}) == 1
