"""Property-style tests for the third-generation (CSR + lazy) kernel.

The second-generation bitset kernel (behind ``csr_kernel_disabled``) and the
seed set-based kernel (behind ``bitset_kernel_disabled``) serve as oracles:
on random databases and a pool of regular expressions the CSR searches, the
lazy relations, the bitmask product tracks and the worklist semi-join must
produce identical answers — including duplicate candidate lists and
target-bound (backward) queries.
"""

import random

import pytest

from repro.automata.nfa import NFA
from repro.engine.joins import EdgeRelation, semijoin_reduce
from repro.graphdb.cache import (
    LazyRelation,
    SynchronisationProduct,
    cache_stats,
    invalidate_cache,
    reachability_index,
)
from repro.graphdb.generators import random_graph
from repro.graphdb.paths import (
    CsrAdjacency,
    bitset_kernel_disabled,
    csr_kernel_disabled,
    csr_kernel_enabled,
    product_search,
    reachable_from,
    reachable_pairs,
    reachable_to,
)

from helpers import ABC, REGEX_POOL, compiled, databases


class TestCsrToggle:
    def test_toggle_is_context_local_and_implies_bitset(self):
        assert csr_kernel_enabled()
        with csr_kernel_disabled():
            assert not csr_kernel_enabled()
            with csr_kernel_disabled():
                assert not csr_kernel_enabled()
            assert not csr_kernel_enabled()
        assert csr_kernel_enabled()
        # The CSR kernel builds on the bitset representation.
        with bitset_kernel_disabled():
            assert not csr_kernel_enabled()


class TestCsrAdjacency:
    def test_arrays_match_the_database(self):
        for db in databases():
            csr = CsrAdjacency(db)
            assert csr.num_nodes == db.num_nodes()
            for edge in db.edges:
                u = csr.node_id[edge.source]
                v = csr.node_id[edge.target]
                indptr, indices = csr.forward[edge.label]
                assert v in indices[indptr[u] : indptr[u + 1]]
                indptr, indices = csr.backward[edge.label]
                assert u in indices[indptr[v] : indptr[v + 1]]

    def test_step_masks_match_successor_sets(self):
        db = random_graph(10, 30, ABC, seed=4)
        csr = CsrAdjacency(db)
        for label in "abc":
            masks = csr.step_masks(label)
            if masks is None:
                continue
            for node in csr.nodes:
                expected = 0
                for target in db.successors_by_label(node, label):
                    expected |= 1 << csr.node_id[target]
                assert masks[csr.node_id[node]] == expected


class TestCsrSearchEquivalence:
    @pytest.mark.parametrize("pattern", REGEX_POOL)
    def test_reachable_pairs_matches_bitset_and_set_kernels(self, pattern):
        nfa = compiled(pattern)
        for db in databases():
            fast = reachable_pairs(db, nfa)
            with csr_kernel_disabled():
                bitset = reachable_pairs(db, nfa)
            with bitset_kernel_disabled():
                oracle = reachable_pairs(db, nfa)
            assert fast == bitset == oracle

    @pytest.mark.parametrize("pattern", ["a*", "a+b", "(a|b)+", "(ab)+"])
    def test_single_source_matches_oracles(self, pattern):
        nfa = compiled(pattern)
        for db in databases():
            for source in list(sorted(db.nodes, key=repr))[:5] + ["ghost"]:
                fast = product_search(db, nfa, source)
                with csr_kernel_disabled():
                    oracle = product_search(db, nfa, source)
                assert fast == oracle
                assert reachable_from(db, nfa, source) == {
                    node for node, states in oracle.items() if states & nfa.accepting
                }

    @pytest.mark.parametrize("pattern", REGEX_POOL)
    def test_backward_and_duplicate_candidates(self, pattern):
        nfa = compiled(pattern)
        for db in databases():
            full = reachable_pairs(db, nfa)
            nodes = sorted(db.nodes, key=repr)
            # Duplicate candidate lists must collapse, not distort.
            doubled = reachable_pairs(db, nfa, sources=nodes + nodes)
            assert doubled == full
            for target in nodes[:3]:
                # A single target out of many sources selects the backward
                # (reversed-CSR) kernel.
                restricted = reachable_pairs(db, nfa, targets=[target, target])
                assert restricted == {pair for pair in full if pair[1] == target}
                assert reachable_to(db, nfa, target) == {
                    source for source, t in full if t == target
                }


class TestLazyRelation:
    def oracle_pairs(self, db, nfa):
        with bitset_kernel_disabled():
            return reachable_pairs(db, nfa)

    @pytest.mark.parametrize("pattern", ["a*", "(a|b)+", "a+b", "(a|bc)*"])
    def test_rows_membership_and_pairs_match_oracle(self, pattern):
        nfa = compiled(pattern)
        for db in databases():
            oracle = self.oracle_pairs(db, nfa)
            relation = LazyRelation(CsrAdjacency(db), nfa)
            assert not relation.materialised
            nodes = sorted(db.nodes, key=repr)
            for node in nodes[:6] + ["ghost"]:
                assert relation.targets_of(node) == {
                    v for u, v in oracle if u == node
                }
                assert relation.sources_of(node) == {
                    u for u, v in oracle if v == node
                }
            # Row queries must not have forced the full pair set.
            assert not relation.materialised
            sample = random.Random(7).sample(nodes, min(4, len(nodes)))
            for u in sample:
                for v in sample:
                    assert ((u, v) in relation) == ((u, v) in oracle)
            assert relation.pairs == oracle
            assert relation.materialised
            assert len(relation) == len(oracle)
            # Materialisation completes the row indexes consistently.
            for node in nodes[:6]:
                assert relation.targets_of(node) == {v for u, v in oracle if u == node}
                assert relation.sources_of(node) == {u for u, v in oracle if v == node}

    def test_size_hint_never_forces(self):
        db = random_graph(8, 20, ABC, seed=2)
        relation = LazyRelation(CsrAdjacency(db), compiled("(a|b|c)*"))
        assert relation.size_hint() == 64
        assert not relation.materialised
        relation.pairs
        assert relation.size_hint() == len(relation.pairs)

    def test_index_returns_lazy_by_default_and_eager_under_toggle(self):
        db = random_graph(8, 20, ABC, seed=3)
        invalidate_cache(db)
        index = reachability_index(db)
        nfa = compiled("a+b")
        lazy = index.relation(nfa)
        assert isinstance(lazy, LazyRelation)
        assert index.relation(compiled("a+b")) is lazy
        with csr_kernel_disabled():
            eager = index.relation(nfa)
        assert isinstance(eager, EdgeRelation)
        assert lazy.pairs == eager.pairs
        invalidate_cache(db)


class TestReverseAdjacencyMemo:
    def test_backward_queries_build_the_reversed_index_once(self):
        # Regression: ``reachable_to``/``reachable_pairs(targets=…)`` used
        # to rebuild the full reversed-edge index on every call.  The CSR
        # snapshot (forward + reversed) is built once per db version.
        db = random_graph(12, 30, ABC, seed=9)
        invalidate_cache(db)
        nfa = compiled("a+b")
        nodes = sorted(db.nodes, key=repr)
        for target in nodes[:5]:
            reachable_to(db, nfa, target)
            reachable_pairs(db, nfa, targets=[target])
        stats = cache_stats(db)["csr"]
        assert stats["misses"] == 1, "reversed adjacency was rebuilt"
        assert stats["hits"] >= 9
        # Mutation invalidates the snapshot: exactly one further build.
        db.add_edge(nodes[0], "c", nodes[1])
        reachable_to(db, nfa, nodes[2])
        stats = cache_stats(db)["csr"]
        assert stats["misses"] == 2
        invalidate_cache(db)


class TestBitmaskProductTracks:
    def unit_pools(self):
        return [
            [compiled("a*b")],
            [compiled("a*b"), NFA.universal("abc")],
            [compiled("(a|b)+"), compiled("a?b+c?")],
        ]

    def test_mask_search_matches_frozenset_search(self):
        for db in [random_graph(8, 22, ABC, seed=s) for s in (0, 1)]:
            nodes = sorted(db.nodes, key=repr)
            for units in self.unit_pools():
                mask_product = SynchronisationProduct(db, units)
                set_product = SynchronisationProduct(db, units)
                for s in nodes[:4]:
                    for t in nodes[:4]:
                        endpoints = tuple((s, t) for _ in units)
                        fast = mask_product.shortest_word(endpoints)
                        with csr_kernel_disabled():
                            oracle = set_product.shortest_word(endpoints)
                        if oracle is None:
                            assert fast is None
                            continue
                        assert fast is not None
                        assert len(fast) == len(oracle)
                        word = "".join(fast)
                        for (source, target), unit in zip(endpoints, units):
                            assert unit.accepts(fast)
                            assert db.path_exists(source, word, target)

    def test_absent_endpoints_have_no_word(self):
        db = random_graph(6, 14, ABC, seed=5)
        product = SynchronisationProduct(db, [compiled("a*")])
        assert product.shortest_word((("ghost", sorted(db.nodes, key=repr)[0]),)) is None

    def test_shortest_word_memo_is_keyed_by_kernel_arm(self):
        # Regression: with a mode-blind memo, toggling the kernel on a warm
        # product returned the CSR-computed word and the frozenset oracle
        # never actually ran — A/B comparisons compared the CSR kernel with
        # itself.
        db = random_graph(8, 22, ABC, seed=1)
        product = SynchronisationProduct(db, [compiled("(a|b)+")])
        nodes = sorted(db.nodes, key=repr)
        endpoints = ((nodes[0], nodes[-1]),)
        fast = product.shortest_word(endpoints)
        assert not product._succ, "the frozenset expansion must not have run yet"
        with csr_kernel_disabled():
            oracle = product.shortest_word(endpoints)
        # The search from present endpoints always expands the start state.
        assert product._succ, "the frozenset expansion must actually run"
        assert (fast is None) == (oracle is None)
        if fast is not None:
            assert len(fast) == len(oracle)


class TestWorklistSemijoin:
    def reference_semijoin(self, edge_endpoints, edge_relations, fixed=None):
        """The pre-worklist implementation, kept verbatim as the oracle."""
        if not edge_endpoints:
            return list(edge_relations)
        domains = {variable: {value} for variable, value in (fixed or {}).items()}
        pairs_per_edge = [relation.pairs for relation in edge_relations]
        changed = True
        while changed:
            changed = False
            filtered_per_edge = []
            for (source, target), pairs in zip(edge_endpoints, pairs_per_edge):
                domain_source = domains.get(source)
                domain_target = domains.get(target)
                filtered = {
                    (u, v)
                    for u, v in pairs
                    if (source != target or u == v)
                    and (domain_source is None or u in domain_source)
                    and (domain_target is None or v in domain_target)
                }
                filtered_per_edge.append(filtered)
                for variable, column in (
                    (source, {u for u, _ in filtered}),
                    (target, {v for _, v in filtered}),
                ):
                    previous = domains.get(variable)
                    if previous is None:
                        domains[variable] = column
                        changed = True
                    elif not previous <= column:
                        domains[variable] = previous & column
                        changed = True
            pairs_per_edge = filtered_per_edge
        return [
            relation if pairs == relation.pairs else EdgeRelation(pairs)
            for pairs, relation in zip(pairs_per_edge, edge_relations)
        ]

    def random_patterns(self):
        rng = random.Random(42)
        variables = ["x", "y", "z", "w", "v"]
        for _case in range(40):
            num_edges = rng.randint(1, 5)
            endpoints = [
                (rng.choice(variables), rng.choice(variables)) for _ in range(num_edges)
            ]
            relations = []
            for _ in range(num_edges):
                pairs = {
                    (rng.randint(0, 6), rng.randint(0, 6))
                    for _ in range(rng.randint(0, 12))
                }
                relations.append(EdgeRelation(pairs))
            fixed = None
            if rng.random() < 0.4:
                fixed = {rng.choice([s for s, _t in endpoints]): rng.randint(0, 6)}
            yield endpoints, relations, fixed

    def test_reduction_matches_reference_on_random_patterns(self):
        for endpoints, relations, fixed in self.random_patterns():
            reduced = semijoin_reduce(endpoints, relations, fixed)
            reference = self.reference_semijoin(endpoints, relations, fixed)
            assert [r.pairs for r in reduced] == [r.pairs for r in reference]
            # Identity preservation for untouched relations is kept too.
            for ours, theirs, original in zip(reduced, reference, relations):
                assert (ours is original) == (theirs is original)

    def test_lazy_relations_reduce_to_the_same_fixpoint(self):
        # Random patterns over real databases: lazy CSR-backed relations
        # (activated row-wise, backward for target-bound sides) must reach
        # exactly the eager fixpoint.
        rng = random.Random(11)
        variables = ["x", "y", "z", "w"]
        for db in [random_graph(9, 24, ABC, seed=s) for s in (0, 2)]:
            csr = CsrAdjacency(db)
            for _case in range(12):
                num_edges = rng.randint(1, 4)
                endpoints = [
                    (rng.choice(variables), rng.choice(variables))
                    for _ in range(num_edges)
                ]
                nfas = [compiled(rng.choice(REGEX_POOL)) for _ in range(num_edges)]
                lazy = [LazyRelation(csr, nfa) for nfa in nfas]
                with bitset_kernel_disabled():
                    eager = [EdgeRelation(reachable_pairs(db, nfa)) for nfa in nfas]
                fixed = None
                if rng.random() < 0.5:
                    fixed = {endpoints[0][rng.randint(0, 1)]: rng.choice(sorted(db.nodes, key=repr))}
                reduced_lazy = semijoin_reduce(endpoints, lazy, fixed)
                reduced_eager = semijoin_reduce(endpoints, eager, fixed)
                assert [r.pairs for r in reduced_lazy] == [
                    r.pairs for r in reduced_eager
                ]
