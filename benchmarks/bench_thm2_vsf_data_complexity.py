"""E-T2 — Theorem 2: NL data complexity of CXRPQ^vsf.

A fixed vstar-free query is evaluated on random databases of increasing size;
the paper's claim is that data complexity is in NL, i.e. for a fixed query
the cost grows polynomially (not exponentially) in |D|.  The benchmark series
over |D| is the reproduced "figure"; the normal form is precomputed once, as
the data-complexity view treats the query as a constant.

A second series measures the **planner worst case**: an all-lazy-component
conjunction on the ``deep_chain`` adversarial family, where the v1 heuristic
(force the lowest-index deferred edge) materialises the near-quadratic hub
relation while the cost-based v2 planner forces the three marker arcs.  The
column pair pins the cardinality-sketch planner's win as data grows.

Run ``python -m benchmarks.bench_thm2_vsf_data_complexity --smoke`` for the
fast assertion-checked version used in CI (v2 must not be slower than v1 on
the smoke workload); ``--json PATH`` dumps both series as a machine-readable
artifact (CI uploads it as ``BENCH_pr6.json``).
"""

import json
import sys
import time

import pytest

from repro.engine.engine import evaluate
from repro.engine.normal_form import normal_form
from repro.engine.planner import planner_stats, planner_v2_disabled, reset_planner_stats
from repro.engine.vsf import evaluate_vsf
from repro.graphdb.cache import invalidate_cache
from repro.graphdb.generators import deep_chain
from repro.queries.cxrpq import CXRPQ
from repro.regex.parser import parse_xregex
from repro.workloads import vsf_scaling_query

from benchmarks.common import cached_random_db, print_table

SIZES = [20, 40, 80, 160]
#: Chain lengths of the planner worst-case series (``deep_chain`` family).
PLANNER_SIZES = [200, 400, 800]
SMOKE_PLANNER_SIZES = [160, 240]
#: The smoke gate: total v2 time must stay within this factor of v1 (the
#: margin absorbs CI timer noise; on this family v2 is many times faster).
SMOKE_PLANNER_MARGIN = 1.1
_QUERY = vsf_scaling_query()
_NORMAL_FORM = normal_form(_QUERY.conjunctive_xregex)

#: The worst-case workload: both edges classical (lazy CSR relations), no
#: fixed variables, boolean — the all-lazy component where the forced-edge
#: choice is the whole cost.  On ``deep_chain`` the hub ``b+`` relation is
#: near-quadratic and the ``c`` markers are O(1).
_PLANNER_QUERY = CXRPQ(
    [("x", parse_xregex("b+"), "y"), ("y", parse_xregex("c"), "z")],
    output_variables=(),
)


def _timed_planner_arm(db, arm):
    invalidate_cache(db)
    reset_planner_stats()
    start = time.perf_counter()
    if arm is None:
        result = evaluate(_PLANNER_QUERY, db, boolean_short_circuit=True)
    else:
        with arm():
            result = evaluate(_PLANNER_QUERY, db, boolean_short_circuit=True)
    elapsed = time.perf_counter() - start
    return elapsed, result.boolean, planner_stats()["forced_pairs"]


def planner_rows(sizes):
    """The worst-case series: v1 vs v2 on ``deep_chain`` per chain length."""
    rows = []
    raw = []
    totals = [0.0, 0.0]
    for length in sizes:
        db = deep_chain(length)
        v1_time, v1_answer, v1_forced = _timed_planner_arm(db, planner_v2_disabled)
        v2_time, v2_answer, v2_forced = _timed_planner_arm(db, None)
        assert v1_answer == v2_answer is True, "planner arms disagree on the answer"
        assert v2_forced <= v1_forced, (
            f"v2 materialised more than v1 at length {length}: "
            f"{v2_forced} > {v1_forced}"
        )
        totals[0] += v1_time
        totals[1] += v2_time
        raw.append(
            {
                "chain_length": length,
                "nodes": db.num_nodes(),
                "edges": db.num_edges(),
                "v1_s": v1_time,
                "v2_s": v2_time,
                "v1_forced_pairs": v1_forced,
                "v2_forced_pairs": v2_forced,
            }
        )
        rows.append(
            [
                length,
                db.num_edges(),
                f"{v1_time * 1000:.1f}",
                f"{v2_time * 1000:.1f}",
                v1_forced,
                v2_forced,
                f"{v1_time / v2_time:.1f}x",
            ]
        )
    return rows, raw, totals


PLANNER_HEADER = [
    "chain",
    "edges",
    "v1 (ms)",
    "v2 (ms)",
    "v1 forced",
    "v2 forced",
    "v1/v2",
]
PLANNER_TITLE = (
    "Planner worst case — all-lazy deep_chain conjunction "
    "(v1 lowest-index heuristic vs v2 cost-based)"
)


@pytest.mark.parametrize("nodes", SIZES)
def test_vsf_fixed_query_data_scaling(benchmark, nodes):
    db = cached_random_db(nodes, seed=7)
    result = benchmark.pedantic(
        lambda: evaluate_vsf(_QUERY, db, precomputed_normal_form=_NORMAL_FORM),
        rounds=3,
        iterations=1,
    )
    assert isinstance(result.boolean, bool)


def test_vsf_data_scaling_table(benchmark):
    def build_rows():
        rows = []
        for nodes in SIZES:
            db = cached_random_db(nodes, seed=7)
            result = evaluate_vsf(_QUERY, db, precomputed_normal_form=_NORMAL_FORM)
            rows.append([db.num_nodes(), db.num_edges(), result.boolean])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        "Theorem 2 — fixed vsf query over growing databases",
        ["nodes", "edges", "satisfied"],
        rows,
    )


def test_planner_worst_case_table(benchmark):
    rows, _raw, totals = benchmark.pedantic(
        lambda: planner_rows(PLANNER_SIZES[:2]), rounds=1, iterations=1
    )
    print_table(PLANNER_TITLE, PLANNER_HEADER, rows)
    assert totals[1] <= totals[0], (
        "the cost-based planner lost to the lowest-index heuristic on its "
        "own worst-case family"
    )


def main(argv):
    smoke = "--smoke" in argv
    json_path = None
    if "--json" in argv:
        position = argv.index("--json")
        if position + 1 >= len(argv) or argv[position + 1].startswith("-"):
            print(
                "usage: bench_thm2_vsf_data_complexity [--smoke] [--json PATH]",
                file=sys.stderr,
            )
            return 2
        json_path = argv[position + 1]
    # The data-complexity series (the reproduced figure).
    sizes = SIZES[:2] if smoke else SIZES
    scaling_rows = []
    for nodes in sizes:
        db = cached_random_db(nodes, seed=7)
        start = time.perf_counter()
        result = evaluate_vsf(_QUERY, db, precomputed_normal_form=_NORMAL_FORM)
        elapsed = time.perf_counter() - start
        scaling_rows.append(
            {
                "nodes": db.num_nodes(),
                "edges": db.num_edges(),
                "seconds": elapsed,
                "satisfied": result.boolean,
            }
        )
    print_table(
        "Theorem 2 — fixed vsf query over growing databases",
        ["nodes", "edges", "ms", "satisfied"],
        [
            [row["nodes"], row["edges"], f"{row['seconds'] * 1000:.1f}", row["satisfied"]]
            for row in scaling_rows
        ],
    )
    # The planner worst-case series.  Millisecond-scale smoke rows on shared
    # CI runners are noisy, so the v2-vs-v1 gate passes if *any* of up to
    # three sweeps lands inside the margin (a real planner regression —
    # forcing the wrong relation — fails all of them, and the forced-pairs
    # assertion inside planner_rows is timer-independent).
    planner_sizes = SMOKE_PLANNER_SIZES if smoke else PLANNER_SIZES
    attempts = 3 if smoke else 1
    for attempt in range(attempts):
        rows, raw, totals = planner_rows(planner_sizes)
        if not smoke or totals[1] <= totals[0] * SMOKE_PLANNER_MARGIN:
            break
        print(
            f"[smoke gate] v2 {totals[1] * 1000:.1f} ms vs v1 {totals[0] * 1000:.1f} ms "
            f"on attempt {attempt + 1}; re-measuring"
        )
    print()
    print_table(PLANNER_TITLE, PLANNER_HEADER, rows)
    if json_path is not None:
        # Written before the gate below, so the CI artifact survives (and
        # documents) a failing run.
        payload = {
            "workload": "thm2-vsf+planner-worst-case",
            "scaling": {"sizes": sizes, "rows": scaling_rows},
            "planner": {
                "sizes": planner_sizes,
                "rows": raw,
                "v1_total_s": totals[0],
                "v2_total_s": totals[1],
            },
            "smoke": smoke,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"[artifact] wrote {json_path}")
    assert totals[1] <= totals[0] * (SMOKE_PLANNER_MARGIN if smoke else 1.0), (
        f"planner v2 slower than v1 on the worst-case family: "
        f"{totals[1] * 1000:.1f} ms vs {totals[0] * 1000:.1f} ms"
    )
    print("\nOK" + (" (smoke)" if smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
