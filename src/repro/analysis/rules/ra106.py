"""RA106 — never mutate the shared frozen rows a relation hands out.

:class:`~repro.engine.joins.EdgeRelation` and the lazy CSR-backed relations
return *shared* row sets: ``targets_of()``/``sources_of()`` adjacency sets
and the ``pairs`` collection are either cached in the per-database
reachability index or views the relation keeps reusing.  The join machinery
treats them as frozen — a caller that does ``rows = relation.targets_of(n);
rows.add(...)`` is writing into the cache every other query reads, which is
the worst kind of bug: answers change only after a particular query
sequence warmed the cache.  The contract: copy first (``set(rows)``), then
mutate the copy.  This rule tracks names bound from the sharing accessors
inside each ``engine/`` function and flags in-place mutating method calls
on them (or directly on ``.pairs`` / an accessor's result); rebinding a
name through ``set(...)``/``frozenset(...)``/``list(...)``/``sorted(...)``
clears the taint.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from repro.analysis.core import (
    Example,
    Finding,
    Project,
    Rule,
    SourceFile,
    terminal_name,
)

#: Accessors whose result is shared with the relation/cache, not a copy.
_SHARING_ACCESSORS = frozenset({"targets_of", "sources_of"})

#: Attributes whose value is shared row storage.
_SHARED_ATTRIBUTES = frozenset({"pairs"})

#: In-place set/list/dict mutators.
_MUTATORS = frozenset(
    {
        "add",
        "update",
        "discard",
        "remove",
        "clear",
        "pop",
        "intersection_update",
        "difference_update",
        "symmetric_difference_update",
        "append",
        "extend",
        "insert",
        "setdefault",
    }
)

#: Constructors that copy — assignment through them clears the taint.
_COPYING_CALLS = frozenset({"set", "frozenset", "list", "sorted", "tuple", "dict"})

_AnyFunction = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_shared_expression(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to relation-shared row storage."""
    if isinstance(node, ast.Attribute) and node.attr in _SHARED_ATTRIBUTES:
        return True
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in _SHARING_ACCESSORS
    return False


class Ra106(Rule):
    rule_id = "RA106"
    title = "in-place mutation of shared frozen relation rows"
    rationale = (
        "EdgeRelation/LazyRelation hand out *shared* row storage: "
        "targets_of()/sources_of() adjacency sets and .pairs live in the "
        "per-database reachability cache and are reused across queries. "
        "Mutating one in place (rows = relation.targets_of(n); "
        "rows.add(...)) writes into every later query's answer — a "
        "corruption that only reproduces after a specific cache-warming "
        "sequence. Copy first (set(rows)) and mutate the copy."
    )
    examples = {
        "bad": [
            Example(
                code=(
                    "def extend(relation, node):\n"
                    "    rows = relation.targets_of(node)\n"
                    "    rows.add(node)\n"
                    "    return rows\n"
                ),
                path="src/repro/engine/fixture.py",
            ),
            Example(
                code=(
                    "def merge(relation, extra):\n"
                    "    relation.pairs.update(extra)\n"
                    "    return relation.pairs\n"
                ),
                path="src/repro/engine/fixture.py",
            ),
        ],
        "good": [
            Example(
                code=(
                    "def extend(relation, node):\n"
                    "    rows = set(relation.targets_of(node))\n"
                    "    rows.add(node)\n"
                    "    return rows\n"
                ),
                path="src/repro/engine/fixture.py",
            ),
            Example(
                code=(
                    "def merge(relation, extra):\n"
                    "    pairs = set(relation.pairs)\n"
                    "    pairs.update(extra)\n"
                    "    return pairs\n"
                ),
                path="src/repro/engine/fixture.py",
            ),
        ],
    }

    def applies(self, path: str) -> bool:
        return "/engine/" in ("/" + path)

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, function: _AnyFunction
    ) -> Iterator[Finding]:
        tainted: Set[str] = set()
        findings: List[Finding] = []

        def scan(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not function:
                    return  # nested functions get their own pass
            if isinstance(node, ast.Assign):
                scan(node.value)
                shared = _is_shared_expression(node.value)
                copied = (
                    isinstance(node.value, ast.Call)
                    and terminal_name(node.value.func) in _COPYING_CALLS
                )
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if shared and not copied:
                            tainted.add(target.id)
                        else:
                            tainted.discard(target.id)
                return
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    target = func.value
                    mutates_shared = _is_shared_expression(target) or (
                        isinstance(target, ast.Name) and target.id in tainted
                    )
                    if mutates_shared:
                        what = (
                            target.id
                            if isinstance(target, ast.Name)
                            else terminal_name(target) or "shared rows"
                        )
                        findings.append(
                            self.finding(
                                source,
                                node.lineno,
                                f"in-place .{func.attr}() on shared relation "
                                f"rows ({what}) — copy with set(...) before "
                                "mutating",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                scan(child)

        for statement in function.body:
            scan(statement)
        return iter(findings)


RULE = Ra106()
