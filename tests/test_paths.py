"""Tests for regular-path reachability in graph databases."""

from repro.core.alphabet import Alphabet
from repro.automata.nfa import NFA
from repro.graphdb.database import GraphDatabase
from repro.graphdb.paths import (
    db_nfa_between,
    evaluate_rpq,
    find_path_word,
    reachable_from,
    reachable_pairs,
    reachable_to,
)
from repro.regex.parser import parse_xregex

ABC = Alphabet("abc")


def chain_db() -> GraphDatabase:
    return GraphDatabase.from_edges(
        [(0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "c", 0), (2, "a", 2)]
    )


class TestReachability:
    def test_reachable_from(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a+"), ABC)
        assert reachable_from(db, nfa, 0) == {1, 2}
        assert reachable_from(db, nfa, 3) == set()

    def test_reachable_pairs(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("ab"), ABC)
        assert reachable_pairs(db, nfa) == {(1, 3), (2, 3)}

    def test_epsilon_paths(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a*"), ABC)
        pairs = reachable_pairs(db, nfa)
        for node in db.nodes:
            assert (node, node) in pairs

    def test_evaluate_rpq(self):
        db = chain_db()
        pairs = evaluate_rpq(db, parse_xregex("a+b"))
        assert pairs == {(0, 3), (1, 3), (2, 3)}

    def test_cycle_traversal(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("(a|b|c)+"), ABC)
        assert (0, 0) in reachable_pairs(db, nfa)

    def test_ghost_source_does_not_reach_itself(self):
        # Regression: the epsilon seed used to report a node outside the
        # database as reaching itself whenever the NFA accepts epsilon.
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a*"), ABC)
        assert reachable_from(db, nfa, "ghost") == set()
        assert reachable_pairs(db, nfa, sources=["ghost"]) == set()
        assert reachable_pairs(db, nfa, sources=["ghost", 0]) == {(0, 0), (0, 1), (0, 2)}

    def test_explicit_sources_restrict_the_pairs(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("ab"), ABC)
        assert reachable_pairs(db, nfa, sources=[1]) == {(1, 3)}

    def test_explicit_targets_restrict_the_pairs(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a+b"), ABC)
        # One target against all (five) sources triggers the backward search.
        assert reachable_pairs(db, nfa, targets=[3]) == {(0, 3), (1, 3), (2, 3)}
        assert reachable_pairs(db, nfa, sources=[1, 2], targets=[3]) == {(1, 3), (2, 3)}
        assert reachable_pairs(db, nfa, targets=[0]) == set()

    def test_reachable_to_is_the_backward_reachable_from(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a+"), ABC)
        assert reachable_to(db, nfa, 2) == {0, 1, 2}
        assert reachable_to(db, nfa, 0) == set()
        assert reachable_to(db, nfa, "ghost") == set()


class TestWitnessWords:
    def test_find_path_word(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a+b"), ABC)
        word = find_path_word(db, nfa, 0, 3)
        assert word == "aab"

    def test_find_path_word_trivial(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a*"), ABC)
        assert find_path_word(db, nfa, 2, 2) == ""

    def test_find_path_word_absent(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("c"), ABC)
        assert find_path_word(db, nfa, 0, 3) is None

    def test_find_path_word_respects_max_length(self):
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a+b"), ABC)
        assert find_path_word(db, nfa, 0, 3, max_length=2) is None

    def test_find_path_word_absent_source_equals_target(self):
        # Regression: ``source == target`` used to return "" even when the
        # node is not in the database; absent nodes have no trivial path.
        db = chain_db()
        nfa = NFA.from_regex(parse_xregex("a*"), ABC)
        assert find_path_word(db, nfa, "ghost", "ghost") is None
        assert find_path_word(db, nfa, "ghost", 3) is None
        assert find_path_word(db, nfa, 0, "ghost") is None


class TestDatabaseAsNFA:
    def test_db_nfa_between(self):
        db = chain_db()
        walker = db_nfa_between(db, 0, [3])
        assert walker.accepts("aab")
        assert walker.accepts("aaab")
        assert not walker.accepts("ab")
        assert not walker.accepts("aabc")

    def test_db_nfa_between_same_node(self):
        db = chain_db()
        walker = db_nfa_between(db, 2, [2])
        assert walker.accepts("")
        assert walker.accepts("a")
        assert walker.accepts("bca" + "a")

    def test_db_nfa_between_missing_node(self):
        db = chain_db()
        walker = db_nfa_between(db, "ghost", [3])
        assert walker.is_empty()
