"""CI smoke: refresh a serving snapshot shard across in-flight requests.

Exercises the live-graph swap path end to end on the checked-in fixture:
a snapshot shard is cold-loaded by its first request, a burst of requests
is put in flight, the shard is refreshed (``begin_refresh`` on a thread,
then an atomic ``swap``) while they drain, and a post-swap request answers
from the new generation.  The swap must strand nothing: every envelope of
the in-flight burst comes back ``ok`` — tickets admitted before the swap
finish against the retired generation.

Usage::

    PYTHONPATH=src python examples/service/swap_refresh.py live.rgsnap
"""

import asyncio
import sys

from repro.service import DatabaseRegistry, QueryRequest, QueryService, QuerySpec


async def smoke(path: str) -> int:
    registry = DatabaseRegistry()
    registry.register_lazy("smoke", path)
    spec = QuerySpec(edges=(("x", "(a|b)*c", "y"),), output_variables=("x", "y"))
    async with QueryService(registry) as service:
        before = await service.submit(QueryRequest("smoke", spec))
        assert before.ok, before.error
        in_flight = [
            asyncio.create_task(service.submit(QueryRequest("smoke", spec)))
            for _ in range(8)
        ]
        entry = await service.refresh("smoke")
        after = await service.submit(QueryRequest("smoke", spec))
        burst = await asyncio.gather(*in_flight)
        stranded = [result for result in burst if not result.ok]
        assert not stranded, f"the swap stranded {len(stranded)} in-flight request(s)"
        assert after.ok, after.error
        # Same file on both sides of the swap, so the answers must agree.
        assert after.tuples == before.tuples, "answers changed across a same-file swap"
        stats = service.stats()["registry"]
        assert stats["swaps"] == 1 and stats["refreshes"] == 1, stats
        assert stats["retired"] == 1, stats
    print(
        f"swap smoke ok: generation {entry.generation} serving, "
        f"{len(burst)} in-flight request(s) completed across the swap"
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: swap_refresh.py <shard.rgsnap>", file=sys.stderr)
        sys.exit(2)
    sys.exit(asyncio.run(smoke(sys.argv[1])))
