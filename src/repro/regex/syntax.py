"""Abstract syntax of xregex — regular expressions with string variables.

This module implements Definition 3 of the paper.  An xregex over a terminal
alphabet ``Sigma`` and a set of string variables ``Xs`` is built from

* terminal symbols and the empty word,
* variable references ``x`` (rendered ``&x`` in the surface syntax),
* concatenation, alternation and the ``+`` operator,
* variable definitions ``x{alpha}`` where ``x`` does not occur in
  ``var(alpha)``.

``r*`` is treated as a first-class node but, following the paper, it is
semantically the shorthand ``r+ | ()``; the structural restrictions
(vstar-freeness etc.) treat ``*`` exactly like ``+``.

The classes here are immutable; transformations (normal form, instantiation,
…) rebuild trees functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional as Opt, Sequence, Set, Tuple

from repro.core.alphabet import Alphabet
from repro.core.errors import XregexSyntaxError

#: Characters that must be escaped in the surface syntax.
METACHARACTERS = set("(){}[]|+*?&.\\∅ \t\n")


class Xregex:
    """Base class of all xregex AST nodes."""

    __slots__ = ()

    # -- structure ---------------------------------------------------------

    def children(self) -> Tuple["Xregex", ...]:
        """The direct sub-expressions of this node."""
        return ()

    def iter_nodes(self) -> Iterator["Xregex"]:
        """Yield this node and all descendants in pre-order."""
        stack: List[Xregex] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """The number of AST nodes, used as the size measure ``|alpha|``."""
        return sum(1 for _ in self.iter_nodes())

    # -- variables ---------------------------------------------------------

    def variables(self) -> Set[str]:
        """``var(alpha)`` of Definition 3: referenced or defined variables."""
        names: Set[str] = set()
        for node in self.iter_nodes():
            if isinstance(node, VarRef):
                names.add(node.name)
            elif isinstance(node, VarDef):
                names.add(node.name)
        return names

    def referenced_variables(self) -> Set[str]:
        """Variables with at least one reference in this expression."""
        return {node.name for node in self.iter_nodes() if isinstance(node, VarRef)}

    def defined_variables(self) -> Set[str]:
        """Variables with at least one definition in this expression."""
        return {node.name for node in self.iter_nodes() if isinstance(node, VarDef)}

    def definitions(self) -> List["VarDef"]:
        """All definition nodes, in pre-order."""
        return [node for node in self.iter_nodes() if isinstance(node, VarDef)]

    def references(self) -> List["VarRef"]:
        """All reference nodes, in pre-order."""
        return [node for node in self.iter_nodes() if isinstance(node, VarRef)]

    def definitions_of(self, name: str) -> List["VarDef"]:
        """All definition nodes for variable ``name``."""
        return [node for node in self.definitions() if node.name == name]

    def is_classical(self) -> bool:
        """True if the expression is a classical regular expression (no variables)."""
        return not any(isinstance(node, (VarRef, VarDef)) for node in self.iter_nodes())

    def contains_variables(self) -> bool:
        """True if the expression contains any variable reference or definition."""
        return not self.is_classical()

    def terminal_symbols(self) -> Set[str]:
        """The terminal symbols that occur literally in the expression."""
        symbols: Set[str] = set()
        for node in self.iter_nodes():
            if isinstance(node, Symbol):
                symbols.add(node.char)
            elif isinstance(node, SymbolClass) and not node.negated:
                symbols.update(node.symbols)
        return symbols

    # -- validation --------------------------------------------------------

    def validate(self) -> "Xregex":
        """Check the well-formedness condition of Definition 3.

        The only structural condition beyond the grammar is that in a
        definition ``x{alpha}`` the variable ``x`` does not occur in
        ``var(alpha)``.  Returns ``self`` for chaining; raises
        :class:`XregexSyntaxError` on violation.
        """
        for node in self.iter_nodes():
            if isinstance(node, VarDef) and node.name in node.body.variables():
                raise XregexSyntaxError(
                    f"definition of variable {node.name!r} contains {node.name!r} "
                    "in its body, which Definition 3 forbids"
                )
        return self

    # -- transformation helpers ---------------------------------------------

    def map_children(self, fn: Callable[["Xregex"], "Xregex"]) -> "Xregex":
        """Return a copy of this node with ``fn`` applied to each child."""
        return self

    def transform_bottom_up(self, fn: Callable[["Xregex"], "Xregex"]) -> "Xregex":
        """Rebuild the tree bottom-up, applying ``fn`` to every rebuilt node."""
        rebuilt = self.map_children(lambda child: child.transform_bottom_up(fn))
        return fn(rebuilt)

    def substitute_references(self, mapping: Mapping[str, "Xregex"]) -> "Xregex":
        """Replace every reference of a variable in ``mapping`` by the given expression."""

        def replace(node: Xregex) -> Xregex:
            if isinstance(node, VarRef) and node.name in mapping:
                return mapping[node.name]
            return node

        return self.transform_bottom_up(replace)

    def substitute_definitions(self, mapping: Mapping[str, "Xregex"]) -> "Xregex":
        """Replace every definition node of a variable in ``mapping`` by the given expression."""

        def replace(node: Xregex) -> Xregex:
            if isinstance(node, VarDef) and node.name in mapping:
                return mapping[node.name]
            return node

        return self.transform_bottom_up(replace)

    def rename_variables(self, mapping: Mapping[str, str]) -> "Xregex":
        """Consistently rename variables (both definitions and references)."""

        def replace(node: Xregex) -> Xregex:
            if isinstance(node, VarRef) and node.name in mapping:
                return VarRef(mapping[node.name])
            if isinstance(node, VarDef) and node.name in mapping:
                return VarDef(mapping[node.name], node.body)
            return node

        return self.transform_bottom_up(replace)

    # -- misc ----------------------------------------------------------------

    def to_string(self) -> str:
        """Render the expression in the library's surface syntax."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.to_string()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_string()!r})"


def _escape(char: str) -> str:
    if char in METACHARACTERS:
        return "\\" + char
    return char


@dataclass(frozen=True, repr=False)
class Epsilon(Xregex):
    """The empty word ``()``."""

    __slots__ = ()

    def to_string(self) -> str:
        return "()"


@dataclass(frozen=True, repr=False)
class EmptySet(Xregex):
    """The empty language, written ``∅`` (added to XRE for technical reasons)."""

    __slots__ = ()

    def to_string(self) -> str:
        return "∅"


@dataclass(frozen=True, repr=False)
class Symbol(Xregex):
    """A single terminal symbol from the alphabet."""

    char: str

    def __post_init__(self) -> None:
        if not isinstance(self.char, str) or len(self.char) != 1:
            raise XregexSyntaxError(f"Symbol expects a single character, got {self.char!r}")

    def to_string(self) -> str:
        return _escape(self.char)


@dataclass(frozen=True, repr=False)
class AnySymbol(Xregex):
    """The wildcard ``.`` matching any single symbol of the alphabet."""

    __slots__ = ()

    def to_string(self) -> str:
        return "."


@dataclass(frozen=True, repr=False)
class SymbolClass(Xregex):
    """A character class ``[abc]`` or negated class ``[^ab]``.

    Negated classes are resolved against the evaluation alphabet; the paper
    uses this to write expressions such as ``(Sigma \\ {a, b})*``.
    """

    symbols: frozenset
    negated: bool = False

    def __post_init__(self) -> None:
        for symbol in self.symbols:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise XregexSyntaxError(
                    f"SymbolClass expects single-character symbols, got {symbol!r}"
                )

    def resolve(self, alphabet: Alphabet) -> frozenset:
        """The set of symbols this class denotes over ``alphabet``."""
        if self.negated:
            return frozenset(alphabet.symbols - self.symbols)
        return frozenset(self.symbols)

    def to_string(self) -> str:
        inner = "".join(_escape(symbol) for symbol in sorted(self.symbols))
        prefix = "^" if self.negated else ""
        return f"[{prefix}{inner}]"


@dataclass(frozen=True, repr=False)
class Concat(Xregex):
    """Concatenation of two or more sub-expressions."""

    parts: Tuple[Xregex, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise XregexSyntaxError("Concat requires at least two parts; use concat()")

    def children(self) -> Tuple[Xregex, ...]:
        return self.parts

    def map_children(self, fn: Callable[[Xregex], Xregex]) -> Xregex:
        return concat(*[fn(part) for part in self.parts])

    def to_string(self) -> str:
        rendered = []
        for part in self.parts:
            text = part.to_string()
            if isinstance(part, (Alternation,)):
                text = f"({text})"
            rendered.append((part, text))
        pieces = []
        for index, (part, text) in enumerate(rendered):
            pieces.append(text)
            # A reference followed by an identifier character would be
            # re-parsed as a longer variable name; keep printing parseable.
            if isinstance(part, VarRef) and index + 1 < len(rendered):
                next_text = rendered[index + 1][1]
                if next_text and (next_text[0].isalnum() or next_text[0] == "_"):
                    pieces.append(" ")
        return "".join(pieces)


@dataclass(frozen=True, repr=False)
class Alternation(Xregex):
    """Alternation (``|``) of two or more sub-expressions."""

    options: Tuple[Xregex, ...]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise XregexSyntaxError("Alternation requires at least two options; use alternation()")

    def children(self) -> Tuple[Xregex, ...]:
        return self.options

    def map_children(self, fn: Callable[[Xregex], Xregex]) -> Xregex:
        return alternation(*[fn(option) for option in self.options])

    def to_string(self) -> str:
        return "|".join(option.to_string() for option in self.options)


def _wrap_for_suffix(inner: Xregex) -> str:
    text = inner.to_string()
    if isinstance(inner, (Concat, Alternation)) or (
        isinstance(inner, (Plus, Star, Optional))
    ):
        return f"({text})"
    return text


@dataclass(frozen=True, repr=False)
class Plus(Xregex):
    """One-or-more repetition ``r+``."""

    inner: Xregex

    def children(self) -> Tuple[Xregex, ...]:
        return (self.inner,)

    def map_children(self, fn: Callable[[Xregex], Xregex]) -> Xregex:
        return Plus(fn(self.inner))

    def to_string(self) -> str:
        return _wrap_for_suffix(self.inner) + "+"


@dataclass(frozen=True, repr=False)
class Star(Xregex):
    """Zero-or-more repetition ``r*`` (shorthand for ``r+ | ()``)."""

    inner: Xregex

    def children(self) -> Tuple[Xregex, ...]:
        return (self.inner,)

    def map_children(self, fn: Callable[[Xregex], Xregex]) -> Xregex:
        return Star(fn(self.inner))

    def to_string(self) -> str:
        return _wrap_for_suffix(self.inner) + "*"


@dataclass(frozen=True, repr=False)
class Optional(Xregex):
    """Zero-or-one occurrence ``r?`` (shorthand for ``r | ()``)."""

    inner: Xregex

    def children(self) -> Tuple[Xregex, ...]:
        return (self.inner,)

    def map_children(self, fn: Callable[[Xregex], Xregex]) -> Xregex:
        return Optional(fn(self.inner))

    def to_string(self) -> str:
        return _wrap_for_suffix(self.inner) + "?"


@dataclass(frozen=True, repr=False)
class VarRef(Xregex):
    """A reference of a string variable, written ``&x``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not _is_identifier(self.name):
            raise XregexSyntaxError(f"invalid variable name {self.name!r}")

    def to_string(self) -> str:
        return f"&{self.name}"


@dataclass(frozen=True, repr=False)
class VarDef(Xregex):
    """A definition ``x{alpha}`` of a string variable."""

    name: str
    body: Xregex

    def __post_init__(self) -> None:
        if not self.name or not _is_identifier(self.name):
            raise XregexSyntaxError(f"invalid variable name {self.name!r}")

    def children(self) -> Tuple[Xregex, ...]:
        return (self.body,)

    def map_children(self, fn: Callable[[Xregex], Xregex]) -> Xregex:
        return VarDef(self.name, fn(self.body))

    def to_string(self) -> str:
        return f"{self.name}{{{self.body.to_string()}}}"


def _is_identifier(name: str) -> bool:
    if not name:
        return False
    first = name[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(char.isalnum() or char == "_" for char in name[1:])


#: Singleton instances for convenience.
EPSILON = Epsilon()
EMPTY = EmptySet()


# -- smart constructors ------------------------------------------------------


def concat(*parts: Xregex) -> Xregex:
    """Concatenate expressions, flattening nested concatenations.

    The empty concatenation is ``()``; if any part is the empty set the
    result is the empty set; epsilon parts are dropped.
    """
    flat: List[Xregex] = []
    for part in parts:
        if isinstance(part, EmptySet):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alternation(*options: Xregex) -> Xregex:
    """Combine expressions into an alternation, flattening and dropping ``∅``."""
    flat: List[Xregex] = []
    for option in options:
        if isinstance(option, EmptySet):
            continue
        if isinstance(option, Alternation):
            flat.extend(option.options)
        else:
            flat.append(option)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alternation(tuple(flat))


def literal(word: str) -> Xregex:
    """The xregex denoting exactly ``word`` (the empty word gives epsilon)."""
    if not word:
        return EPSILON
    return concat(*[Symbol(char) for char in word])


def star(inner: Xregex) -> Xregex:
    """Zero-or-more repetition with trivial simplifications."""
    if isinstance(inner, (Epsilon, EmptySet)):
        return EPSILON
    return Star(inner)


def plus(inner: Xregex) -> Xregex:
    """One-or-more repetition with trivial simplifications."""
    if isinstance(inner, Epsilon):
        return EPSILON
    if isinstance(inner, EmptySet):
        return EMPTY
    return Plus(inner)


def optional(inner: Xregex) -> Xregex:
    """Zero-or-one occurrence with trivial simplifications."""
    if isinstance(inner, (Epsilon, EmptySet)):
        return EPSILON
    return Optional(inner)


def var(name: str, body: Xregex) -> VarDef:
    """A variable definition ``name{body}`` (checked by :meth:`Xregex.validate`)."""
    return VarDef(name, body)


def ref(name: str) -> VarRef:
    """A variable reference ``&name``."""
    return VarRef(name)
