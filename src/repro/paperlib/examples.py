"""The running examples of Sections 2 and 3, as code (Examples 1–4)."""

from __future__ import annotations

from typing import List, Tuple

from repro.regex import syntax as rx
from repro.regex.conjunctive import ConjunctiveXregex
from repro.regex.parser import parse_xregex
from repro.regex.refwords import CloseToken, OpenToken, RefToken, RefWord, refword_from_parts


def example1_refword() -> RefWord:
    """The ref-word of Example 1 over ``{a, b, c}`` and ``x1, …, x4``.

    ``a x4 a ◁x1 ab ◁x2 acc ▷x2 a x2 x4 ▷x1 ◁x3 x1 a x2 ▷x3 x3 b x1``
    """
    return refword_from_parts(
        "a", RefToken("x4"), "a",
        OpenToken("x1"), "ab",
        OpenToken("x2"), "acc", CloseToken("x2"),
        "a", RefToken("x2"), RefToken("x4"), CloseToken("x1"),
        OpenToken("x3"), RefToken("x1"), "a", RefToken("x2"), CloseToken("x3"),
        RefToken("x3"), "b", RefToken("x1"),
    )


def example1_expected_vmap() -> dict:
    """The variable mapping stated in Example 1."""
    return {
        "x1": "abaccaacc",
        "x2": "acc",
        "x3": "abaccaaccaacc",
        "x4": "",
    }


def example2_xregex() -> rx.Xregex:
    """``a* x1{a* x2{(a|b)*} b* a*} x2* (a|b)* x1`` of Example 2."""
    return parse_xregex("a*x1{a*x2{(a|b)*}b*a*}&x2*(a|b)*&x1")


def example2_word() -> str:
    """The word ``a^4 (ba)^2 (ab)^3 (ba)^3 a`` matched in Example 2."""
    return "a" * 4 + "ba" * 2 + "ab" * 3 + "ba" * 3 + "a"


def example2_witness_mappings() -> List[dict]:
    """The two witness variable mappings given in Example 2."""
    return [
        {"x1": "babaa", "x2": "ba"},
        {"x1": "ababaa", "x2": "bab"},
    ]


def example3_components() -> Tuple[rx.Xregex, rx.Xregex, rx.Xregex, rx.Xregex]:
    """The xregex ``alpha_1 … alpha_4`` of Example 3."""
    alpha1 = parse_xregex("x2{&x1|a*}b")
    alpha2 = parse_xregex("x1{(a|b)*}x3{c*}b&x3")
    alpha3 = parse_xregex("&x2*a*&x1")
    alpha4 = parse_xregex("x4{a*}b&x4 x1{&x2 a}")
    return alpha1, alpha2, alpha3, alpha4


def example3_conjunctive() -> ConjunctiveXregex:
    """The conjunctive xregex ``(alpha_1, alpha_2, alpha_3)`` of Example 3."""
    alpha1, alpha2, alpha3, _alpha4 = example3_components()
    return ConjunctiveXregex([alpha1, alpha2, alpha3])


def example3_conjunctive_match() -> Tuple[str, str, str]:
    """The conjunctive match ``(abb, abccbcc, ababaaab)`` verified in Example 3."""
    return ("abb", "abccbcc", "ababaaab")


def example3_conjunctive_mapping() -> dict:
    """Its variable mapping ``(ab, ab, cc)`` for ``x1, x2, x3``."""
    return {"x1": "ab", "x2": "ab", "x3": "cc"}


def example4_xregexes() -> dict:
    """The four xregex of Example 4 with their classification."""
    return {
        "not_vstar_free": parse_xregex("x{a*}(b&x(c|a))*b"),
        "vstar_free_not_valt_free": parse_xregex("x{a*}&y((b&x)|(ca))b*&y"),
        # The paper's example contains a reference of ``x`` inside the
        # definition of ``x`` (via the nested definition of ``y``), which
        # Definition 3 itself forbids; we use a reference of ``z`` instead,
        # which preserves the classification (variable-simple, not simple).
        "variable_simple_not_simple": parse_xregex("ax{(b|c)*by{d&z a*}}b&x a*z{d*}&z&y"),
        "simple": parse_xregex("ax{(b|c)*da}b&x a*y{&z}&x&y"),
    }
