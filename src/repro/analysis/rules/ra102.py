"""RA102 — lock discipline for attributes declared ``# guarded-by: <lock>``.

The service layer crosses threads on purpose (``asyncio.to_thread`` for
shard loads and kernel evaluations), so some state is shared between the
event loop and worker threads.  The repo's convention: an ``__init__``
assignment may carry a trailing ``# guarded-by: <lock>`` comment naming a
sibling lock attribute, after which every *other* method of that class may
only read or write the attribute inside a ``with self.<lock>:`` block.  The
comment is the declaration; this rule is the enforcement — an unlocked
access elsewhere in the class is exactly the kind of "only used for stats"
read that turns into a torn snapshot under concurrency.

Accesses inside nested ``def``/``lambda`` bodies are checked with **no**
locks held even when the definition site sits inside a ``with`` block: the
closure may run long after the lock was released.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Union

from repro.analysis.core import (
    Example,
    Finding,
    Project,
    Rule,
    SourceFile,
)

_GUARD_COMMENT = re.compile(r"#\s*guarded-by:\s*(?P<lock>\w+)")

_AnyFunction = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _self_attribute(node: ast.expr) -> str:
    """``self.X`` → ``"X"``; anything else → ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


class Ra102(Rule):
    rule_id = "RA102"
    title = "guarded attribute accessed outside its lock"
    rationale = (
        "State shared between the event loop and asyncio.to_thread worker "
        "threads is declared by a '# guarded-by: <lock>' comment on its "
        "__init__ assignment. After that declaration, every other method "
        "must touch the attribute inside 'with self.<lock>:' — including "
        "read-only stats paths, which otherwise return torn values (a "
        "counter from before an eviction paired with a table from after). "
        "Nested functions are checked lock-free: a closure can outlive the "
        "with-block it was created in."
    )
    examples = {
        "bad": [
            Example(
                code=(
                    "import threading\n"
                    "\n"
                    "class Counter:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._hits = 0  # guarded-by: _lock\n"
                    "\n"
                    "    def bump(self):\n"
                    "        self._hits += 1\n"
                ),
                path="src/repro/service/fixture.py",
            ),
            Example(
                code=(
                    "import threading\n"
                    "\n"
                    "class Registry:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.RLock()\n"
                    "        self._entries = {}  # guarded-by: _lock\n"
                    "\n"
                    "    def stats(self):\n"
                    "        return {'entries': len(self._entries)}\n"
                ),
                path="src/repro/service/fixture.py",
            ),
        ],
        "good": [
            Example(
                code=(
                    "import threading\n"
                    "\n"
                    "class Counter:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._hits = 0  # guarded-by: _lock\n"
                    "\n"
                    "    def bump(self):\n"
                    "        with self._lock:\n"
                    "            self._hits += 1\n"
                ),
                path="src/repro/service/fixture.py",
            ),
            Example(
                code=(
                    "import threading\n"
                    "\n"
                    "class Registry:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.RLock()\n"
                    "        self._entries = {}  # guarded-by: _lock\n"
                    "        self._label = 'main'  # undeclared: not checked\n"
                    "\n"
                    "    def stats(self):\n"
                    "        with self._lock:\n"
                    "            count = len(self._entries)\n"
                    "        return {'entries': count, 'label': self._label}\n"
                ),
                path="src/repro/service/fixture.py",
            ),
        ],
    }

    def applies(self, path: str) -> bool:
        # tests/ build intentionally-unlocked fixtures; the contract guards
        # production classes.
        return not ("/" + path).startswith("/tests/")

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guards = self._declared_guards(source, cls)
        if not guards:
            return
        for member in cls.body:
            if (
                isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                and member.name != "__init__"
            ):
                yield from self._check_function(source, member, guards)

    def _declared_guards(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Dict[str, str]:
        """``# guarded-by:`` declarations on ``self.X = ...`` lines in ``__init__``."""
        guards: Dict[str, str] = {}
        init = next(
            (
                member
                for member in cls.body
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                and member.name == "__init__"
            ),
            None,
        )
        if init is None:
            return guards
        for statement in ast.walk(init):
            targets: List[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = list(statement.targets)
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            for target in targets:
                attribute = _self_attribute(target)
                if not attribute:
                    continue
                match = _GUARD_COMMENT.search(source.line_comment(target.lineno))
                if match is not None:
                    guards[attribute] = match.group("lock")
        return guards

    def _check_function(
        self, source: SourceFile, function: _AnyFunction, guards: Dict[str, str]
    ) -> Iterator[Finding]:
        findings: List[Finding] = []

        def walk(node: ast.AST, held: FrozenSet[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in node.items:
                    lock = _self_attribute(item.context_expr)
                    if lock:
                        acquired.add(lock)
                for item in node.items:
                    walk(item.context_expr, held)
                for statement in node.body:
                    walk(statement, frozenset(acquired))
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Closures can run after the lock is released — check them
                # as if no lock were held.
                for child in ast.iter_child_nodes(node):
                    walk(child, frozenset())
                return
            attribute = _self_attribute(node) if isinstance(node, ast.expr) else ""
            if attribute in guards and guards[attribute] not in held:
                findings.append(
                    self.finding(
                        source,
                        node.lineno,
                        f"self.{attribute} is declared guarded-by "
                        f"{guards[attribute]} but is accessed outside "
                        f"'with self.{guards[attribute]}'",
                    )
                )
            for child in ast.iter_child_nodes(node):
                walk(child, held)

        for statement in function.body:
            walk(statement, frozenset())
        return iter(findings)


RULE = Ra102()
