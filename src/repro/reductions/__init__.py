"""Hardness reductions of the paper, as executable constructions.

Each module builds the database/query pair of a reduction *and* ships a
ground-truth solver for the source problem, so the tests can verify the
reduction end-to-end and the benchmarks can measure how evaluation cost
tracks instance hardness.

* :mod:`repro.reductions.nfa_intersection` — Theorem 1 and Theorem 3
  (PSpace-hardness from the NFA intersection problem),
* :mod:`repro.reductions.hitting_set` — Theorem 7 (NP-hardness of
  ``CXRPQ^<=1`` from Hitting Set, Figure 4),
* :mod:`repro.reductions.reachability` — the NL-hardness part of
  Theorems 3 and 7 (from digraph reachability).
"""

from repro.reductions.nfa_intersection import (
    alpha_ni,
    alpha_ni_k,
    nfa_intersection_database,
    nfa_intersection_query,
    nfa_intersection_nonempty,
)
from repro.reductions.hitting_set import (
    HittingSetInstance,
    hitting_set_database,
    hitting_set_query,
    hitting_set_reduction,
    brute_force_hitting_set,
)
from repro.reductions.reachability import reachability_database, reachability_query

__all__ = [
    "alpha_ni",
    "alpha_ni_k",
    "nfa_intersection_database",
    "nfa_intersection_query",
    "nfa_intersection_nonempty",
    "HittingSetInstance",
    "hitting_set_database",
    "hitting_set_query",
    "hitting_set_reduction",
    "brute_force_hitting_set",
    "reachability_database",
    "reachability_query",
]
