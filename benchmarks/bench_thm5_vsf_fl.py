"""E-T5 — Theorem 5: CXRPQ^vsf,fl evaluation (polynomial normal form).

A fixed vstar-free query with only flat variables is evaluated on growing
databases; together with E-NF this reproduces the claim that the flat
fragment avoids the exponential normal-form blow-up while keeping the NL
data complexity of Theorem 2.
"""

import pytest

from repro.engine.normal_form import normal_form_with_report
from repro.engine.vsf import evaluate_vsf
from repro.workloads import vsf_fl_scaling_query

from benchmarks.common import cached_random_db, print_table

SIZES = [20, 40, 80, 160]
_QUERY = vsf_fl_scaling_query()


def test_query_is_flat_and_normal_form_is_small():
    assert _QUERY.is_vstar_free_flat()
    _nf, report = normal_form_with_report(_QUERY.conjunctive_xregex)
    assert report.after_step3 <= report.input_size ** 2


@pytest.mark.parametrize("nodes", SIZES)
def test_vsf_fl_data_scaling(benchmark, nodes):
    db = cached_random_db(nodes, seed=9)
    result = benchmark.pedantic(lambda: evaluate_vsf(_QUERY, db), rounds=3, iterations=1)
    assert isinstance(result.boolean, bool)


def test_vsf_fl_table(benchmark):
    def build_rows():
        _nf, report = normal_form_with_report(_QUERY.conjunctive_xregex)
        rows = []
        for nodes in SIZES:
            db = cached_random_db(nodes, seed=9)
            result = evaluate_vsf(_QUERY, db)
            rows.append([db.num_nodes(), db.num_edges(), report.after_step3, result.boolean])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        "Theorem 5 — fixed vsf,fl query over growing databases",
        ["nodes", "edges", "|normal form|", "satisfied"],
        rows,
    )
