"""Edge deltas over immutable CSR snapshots: parse, validate, overlay.

The ``.rgsnap`` base payload is immutable by design — zero-copy mmap loading
depends on it.  Live graphs mutate anyway, so mutations travel as
:class:`EdgeDelta` batches (edges to add, edges to remove) that are appended
to the snapshot file as self-describing segments
(:func:`repro.graphdb.storage.append_delta`) and folded into the serving
representation by :func:`overlay_csr`: a **delta overlay** that answers
every :class:`~repro.graphdb.paths.CsrAdjacency`-shaped query as
``base ∪ additions ∖ removals``.

The overlay *is* a :class:`CsrAdjacency` (built via
:meth:`~repro.graphdb.paths.CsrAdjacency.from_arrays`), so every kernel
generation, :class:`~repro.graphdb.cache.LazyRelation`, the statistics
builder and the snapshot serialiser consume it unchanged.  Cost is kept
proportional to what the delta touches, not to the graph:

* labels the delta does not mention keep the **base arrays untouched**
  (zero-copy memoryview casts into the mmap) — they are only re-boxed when
  the delta introduces new nodes, and even then the ``indices`` array is
  shared as-is;
* labels the delta does touch are re-merged in one pass over that label's
  arcs plus the delta — never a per-edge re-parse, never a dictionary-index
  hydration of the base database.

Delta semantics (also the contract of the on-disk segment format):
**removals are matched against the pre-delta graph** — each removal drops
exactly one occurrence of its triple (multigraph duplicates survive until
the last occurrence goes) and it is a :class:`DeltaFormatError` if no
occurrence exists; **additions are applied afterwards** and may introduce
new nodes.  Removing an edge added by the same delta is therefore an error,
not a no-op.

The text format accepted by ``repro ingest`` is one operation per line::

    # comments and blank lines are ignored
    + alice a bob      # add an arc (the leading '+' is optional)
    carol b dave       # add, shorthand
    - alice a bob      # remove one occurrence of an existing arc
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.graphdb.database import Node
from repro.graphdb.io import GraphFormatError
from repro.graphdb.paths import CsrAdjacency

#: One edge mutation operand: ``(source, label, target)``.
Triple = Tuple[Node, str, Node]

_PathLike = Union[str, Path]


class DeltaFormatError(GraphFormatError):
    """Raised when an edge delta cannot be parsed or applied to its base."""


class EdgeDelta:
    """One batch of edge mutations: removals first, then additions."""

    __slots__ = ("additions", "removals")

    def __init__(
        self,
        additions: Sequence[Triple] = (),
        removals: Sequence[Triple] = (),
    ) -> None:
        self.additions: Tuple[Triple, ...] = tuple(
            (source, label, target) for source, label, target in additions
        )
        self.removals: Tuple[Triple, ...] = tuple(
            (source, label, target) for source, label, target in removals
        )

    def __bool__(self) -> bool:
        return bool(self.additions or self.removals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeDelta):
            return NotImplemented
        return self.additions == other.additions and self.removals == other.removals

    def __repr__(self) -> str:
        return f"EdgeDelta(+{len(self.additions)}/-{len(self.removals)})"


def parse_delta_text(text: str) -> EdgeDelta:
    """Parse the ``repro ingest`` text format (see the module docstring)."""
    additions: List[Triple] = []
    removals: List[Triple] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        operation = "+"
        if parts[0] in ("+", "-"):
            operation = parts[0]
            parts = parts[1:]
        if len(parts) != 3:
            raise DeltaFormatError(
                f"delta line {number}: expected '[+|-] source label target', "
                f"got {line!r}"
            )
        source, label, target = parts
        if len(label) != 1:
            raise DeltaFormatError(
                f"delta line {number}: edge labels must be single symbols, "
                f"got {label!r}"
            )
        (additions if operation == "+" else removals).append((source, label, target))
    return EdgeDelta(additions, removals)


def load_delta_file(path: _PathLike) -> EdgeDelta:
    """Load an edge-delta text file (the ``repro ingest`` input)."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise DeltaFormatError(f"cannot read delta file {path}: {error}") from error
    try:
        return parse_delta_text(text)
    except DeltaFormatError as error:
        raise DeltaFormatError(f"{path}: {error}") from error


# ---------------------------------------------------------------------------
# The CSR overlay
# ---------------------------------------------------------------------------

#: One label's CSR entry: ``(indptr, indices)``.
_CsrEntry = Tuple[Sequence[int], Sequence[int]]


def _as_list(values: Sequence[int]) -> List[int]:
    """Materialise an array section as a plain list (C-speed for casts)."""
    if hasattr(values, "tolist"):
        return list(values.tolist())  # type: ignore[attr-defined]
    return list(values)


def _merge_label(
    entry: _CsrEntry,
    additions: Sequence[Tuple[int, int]],
    removals: "Counter[Tuple[int, int]]",
    old_num_nodes: int,
    new_num_nodes: int,
    label: str,
) -> _CsrEntry:
    """Rebuild one label's ``(indptr, indices)`` as base ∪ adds ∖ removes.

    One pass over this label's arcs plus the delta; untouched labels never
    reach here (see :func:`overlay_csr`).  Leftover removals — triples the
    base holds fewer occurrences of than the delta removes — are an error.
    """
    base_indptr, base_indices = entry
    adds_by_source: Dict[int, List[int]] = {}
    for source_id, target_id in additions:
        adds_by_source.setdefault(source_id, []).append(target_id)
    # Removals grouped per source: only the (few) sources the delta
    # actually touches pay a per-arc Python pass — the runs of untouched
    # sources in between are bulk-copied with C-level slice operations, so
    # the merge cost is O(delta + touched arcs), with the unavoidable
    # full-array copies done at memcpy-like speed.
    removes_by_source: Dict[int, "Counter[int]"] = {}
    for (source_id, target_id), count in removals.items():
        removes_by_source.setdefault(source_id, Counter())[target_id] = count
    indptr = [0] * (new_num_nodes + 1)
    indices: List[int] = []

    def copy_untouched(begin: int, end: int) -> None:
        """Bulk-copy the arc slices of the untouched sources ``[begin, end)``."""
        if begin >= end:
            return
        start, stop = base_indptr[begin], base_indptr[end]
        shift = len(indices) - start
        if stop > start:
            indices.extend(base_indices[start:stop])
        if shift:
            indptr[begin + 1 : end + 1] = [
                value + shift for value in base_indptr[begin + 1 : end + 1]
            ]
        else:
            indptr[begin + 1 : end + 1] = base_indptr[begin + 1 : end + 1]

    # Sorted: removal sources are always base nodes (< old_num_nodes, they
    # are validated against the base node table), addition sources may be
    # appended new nodes — those all sort behind the base range.
    touched_sources = sorted(set(adds_by_source) | set(removes_by_source))
    cursor = 0
    for source_id in touched_sources:
        if source_id >= old_num_nodes:
            break
        copy_untouched(cursor, source_id)
        pending = removes_by_source.get(source_id)
        start, stop = base_indptr[source_id], base_indptr[source_id + 1]
        if pending is None:
            if stop > start:
                indices.extend(base_indices[start:stop])
        else:
            for position in range(start, stop):
                target_id = base_indices[position]
                if pending.get(target_id, 0) > 0:
                    pending[target_id] -= 1
                    continue
                indices.append(target_id)
        appended = adds_by_source.get(source_id)
        if appended is not None:
            indices.extend(appended)
        indptr[source_id + 1] = len(indices)
        cursor = source_id + 1
    copy_untouched(cursor, old_num_nodes)
    for source_id in range(old_num_nodes, new_num_nodes):
        appended = adds_by_source.get(source_id)
        if appended is not None:
            indices.extend(appended)
        indptr[source_id + 1] = len(indices)
    unmatched = sum(
        count
        for counter in removes_by_source.values()
        for count in counter.values()
        if count > 0
    )
    if unmatched:
        raise DeltaFormatError(
            f"delta removes {unmatched} occurrence(s) of {label!r}-labelled "
            "edges that the base graph does not hold"
        )
    return indptr, indices


def overlay_csr(
    base: CsrAdjacency,
    additions: Sequence[Triple],
    removals: Sequence[Triple],
    version: int,
) -> CsrAdjacency:
    """The delta overlay of ``base``: a CSR adjacency of base ∪ adds ∖ removes.

    ``version`` must be the owning database's version counter *after* the
    delta is accounted for, so the overlay slots into the version-keyed
    caches (:meth:`repro.graphdb.cache.ReachabilityIndex.preload_csr`)
    exactly like a storage-loaded snapshot.  Raises
    :class:`DeltaFormatError` when a removal references a node or an edge
    occurrence the base graph does not hold.
    """
    nodes: List[Node] = list(base.nodes)
    node_id: Dict[Node, int] = dict(base.node_id)
    fresh = sorted(
        {
            endpoint
            for source, _label, target in additions
            for endpoint in (source, target)
            if endpoint not in node_id
        },
        key=repr,
    )
    for node in fresh:
        node_id[node] = len(nodes)
        nodes.append(node)
    old_num_nodes = base.num_nodes
    new_num_nodes = len(nodes)

    adds_forward: Dict[str, List[Tuple[int, int]]] = {}
    adds_backward: Dict[str, List[Tuple[int, int]]] = {}
    for source, label, target in additions:
        source_id, target_id = node_id[source], node_id[target]
        adds_forward.setdefault(label, []).append((source_id, target_id))
        adds_backward.setdefault(label, []).append((target_id, source_id))
    removes_forward: Dict[str, "Counter[Tuple[int, int]]"] = {}
    removes_backward: Dict[str, "Counter[Tuple[int, int]]"] = {}
    for source, label, target in removals:
        if source not in base.node_id or target not in base.node_id:
            missing = source if source not in base.node_id else target
            raise DeltaFormatError(
                f"delta removes an edge at unknown node {missing!r}"
            )
        if label not in base.forward:
            raise DeltaFormatError(
                f"delta removes edges of a label the base graph never uses: "
                f"{label!r}"
            )
        source_id, target_id = base.node_id[source], base.node_id[target]
        removes_forward.setdefault(label, Counter())[(source_id, target_id)] += 1
        removes_backward.setdefault(label, Counter())[(target_id, source_id)] += 1

    touched = set(adds_forward) | set(removes_forward)
    forward: Dict[str, _CsrEntry] = {}
    backward: Dict[str, _CsrEntry] = {}
    empty_entry: _CsrEntry = ([0] * (old_num_nodes + 1), [])
    for label in set(base.forward) | touched:
        if label not in touched:
            # Untouched label: share the base arrays zero-copy; only the
            # indptr needs re-boxing (extension) when new nodes exist.
            fwd, bwd = base.forward[label], base.backward[label]
            if new_num_nodes == old_num_nodes:
                forward[label], backward[label] = fwd, bwd
            else:
                extension = [len(fwd[1])] * (new_num_nodes - old_num_nodes)
                forward[label] = (_as_list(fwd[0]) + extension, fwd[1])
                backward[label] = (_as_list(bwd[0]) + extension, bwd[1])
            continue
        merged_forward = _merge_label(
            base.forward.get(label, empty_entry),
            adds_forward.get(label, ()),
            removes_forward.get(label, Counter()),
            old_num_nodes,
            new_num_nodes,
            label,
        )
        merged_backward = _merge_label(
            base.backward.get(label, empty_entry),
            adds_backward.get(label, ()),
            removes_backward.get(label, Counter()),
            old_num_nodes,
            new_num_nodes,
            label,
        )
        if merged_forward[1] or merged_backward[1]:
            forward[label] = merged_forward
            backward[label] = merged_backward
        # A label whose last arc was removed disappears entirely, exactly
        # as if the adjacency had been rebuilt from the surviving edges.
    return CsrAdjacency.from_arrays(version, nodes, forward, backward)
