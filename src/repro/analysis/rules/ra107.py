"""RA107 — only declared picklable message types cross the procpool IPC boundary.

The multi-process tier (``service/procpool/``) moves work between the
supervisor process and its worker processes over pipes.  Everything sent is
pickled — so a payload holding a live :class:`GraphDatabase`, an asyncio
future, a lock or a pipe handle either fails to pickle, or worse, pickles
into a *copy* that silently diverges from the parent's object (a database
"shared" by value, a future no one will ever resolve).  The contract is
therefore nominal: every payload of a ``.send()`` / ``.put()`` inside the
procpool package must be an instance of a message type declared in
``messages.MESSAGE_TYPES`` (shards travel as snapshot *paths*, queries as
wire payloads, answers as plain tuples), and the message dataclasses
themselves must not smuggle live handles in their fields.  This rule checks
both ends mechanically: send-sites must trace to a declared message type
(constructor call, parameter or variable annotated with one, or a local
helper whose return annotation is one), and field annotations in
``messages.py`` must stay clear of known live-handle types.  Raw
``send_bytes`` of a literal is exempt — that is the supervisor's self-notify
nudge, not a work payload.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.analysis.core import (
    Example,
    Finding,
    Project,
    Rule,
    SourceFile,
    terminal_name,
)

#: Method names that push a payload across a process boundary.
_SEND_METHODS = {"send", "put", "put_nowait"}

#: Types that carry process-local identity and must never appear in a
#: message dataclass field annotation.
_LIVE_HANDLE_TYPES = {
    "GraphDatabase",
    "SnapshotDatabase",
    "Future",
    "Task",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "Connection",
    "Pipe",
    "Queue",
    "Process",
    "Thread",
    "Ticket",
    "AbstractEventLoop",
}

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """Every terminal name mentioned by an annotation expression."""
    if annotation is None:
        return set()
    names: Set[str] = set()
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotations ("WorkItem") appear under deferred evaluation.
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return names
    for node in ast.walk(annotation):
        name = terminal_name(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
        if name is not None:
            names.add(name)
    return names


def _returns_message(function: Optional[_FunctionDef], allowed: Set[str]) -> bool:
    return function is not None and bool(
        _annotation_names(function.returns) & allowed
    )


class Ra107(Rule):
    rule_id = "RA107"
    title = "undeclared object crossing the procpool IPC boundary"
    rationale = (
        "Everything the process tier sends between supervisor and worker "
        "processes is pickled. A live GraphDatabase, future, lock or pipe "
        "handle in a payload either fails to pickle or — worse — arrives "
        "as a silent copy: a database 'shared' by value, a future nobody "
        "will resolve. The boundary therefore speaks only the frozen "
        "message dataclasses declared in procpool/messages.py "
        "(MESSAGE_TYPES): shards travel as snapshot paths, queries as "
        "wire payloads, answers as plain tuples. Every .send()/.put() "
        "payload must trace to a declared message type, and the message "
        "dataclasses must not smuggle live handles in their fields."
    )
    examples = {
        "bad": [
            Example(
                code=(
                    "def push_work(conn, db, spec):\n"
                    "    # a live database handle would be pickled by value\n"
                    "    conn.send({'db': db, 'spec': spec})\n"
                ),
                path="src/repro/service/procpool/fixture.py",
            ),
            Example(
                code=(
                    "from dataclasses import dataclass\n"
                    "\n"
                    "from repro.graphdb.database import GraphDatabase\n"
                    "\n"
                    "@dataclass(frozen=True)\n"
                    "class WorkItem:\n"
                    "    db: GraphDatabase  # live handle in a message field\n"
                    "    spec: dict\n"
                    "\n"
                    "MESSAGE_TYPES = (WorkItem,)\n"
                ),
                path="src/repro/service/procpool/messages.py",
            ),
        ],
        "good": [
            Example(
                code=(
                    "from repro.service.procpool.messages import WorkItem\n"
                    "\n"
                    "def push_work(conn, path, spec):\n"
                    "    conn.send(WorkItem(item_id=('s', 1, 0, 'fp', 1), "
                    "shard='s', path=path, fmt=None, spec=spec))\n"
                ),
                path="src/repro/service/procpool/fixture.py",
            ),
            Example(
                code=(
                    "from repro.service.procpool.messages import WorkItem, WorkResult\n"
                    "\n"
                    "def _execute(item: WorkItem) -> WorkResult:\n"
                    "    return WorkResult(item_id=item.item_id, worker_id=1, ok=True)\n"
                    "\n"
                    "def loop(conn, item: WorkItem):\n"
                    "    result = _execute(item)\n"
                    "    conn.send(result)\n"
                ),
                path="src/repro/service/procpool/worker_fixture.py",
            ),
        ],
    }

    def applies(self, path: str) -> bool:
        anchored = "/" + path
        return "/procpool/" in anchored and not anchored.startswith("/tests/")

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        allowed = set(project.message_types)
        yield from self._check_message_fields(source)
        functions: Dict[str, _FunctionDef] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        for function in functions.values():
            yield from self._check_sends(source, function, functions, allowed)
        # Module-level sends (rare, but the boundary contract is total).
        yield from self._check_sends(source, None, functions, allowed)

    # -- send-site tracing --------------------------------------------------------

    def _check_sends(
        self,
        source: SourceFile,
        function: Optional[_FunctionDef],
        functions: Dict[str, _FunctionDef],
        allowed: Set[str],
    ) -> Iterator[Finding]:
        if function is not None:
            body: List[ast.stmt] = list(function.body)
        else:
            body = [
                statement
                for statement in source.tree.body
                if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            ]
        bindings = self._local_bindings(function, body, functions, allowed)
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not function:
                    continue  # nested defs get their own pass
                if not isinstance(node, ast.Call):
                    continue
                method = (
                    node.func.attr if isinstance(node.func, ast.Attribute) else None
                )
                if method == "send_bytes":
                    payload = node.args[0] if node.args else None
                    if not (
                        isinstance(payload, ast.Constant)
                        and isinstance(payload.value, bytes)
                    ):
                        yield self.finding(
                            source,
                            node.lineno,
                            "send_bytes() across the procpool boundary must "
                            "carry a literal nudge, not computed data — use a "
                            "declared message type for payloads",
                        )
                    continue
                if method not in _SEND_METHODS or not node.args:
                    continue
                if self._payload_ok(node.args[0], bindings, functions, allowed):
                    continue
                yield self.finding(
                    source,
                    node.lineno,
                    f".{method}() payload is not a declared picklable message "
                    "type (MESSAGE_TYPES in procpool/messages.py) — live "
                    "databases, futures and locks must not cross the IPC "
                    "boundary; send paths, wire payloads and plain values "
                    "wrapped in a message dataclass",
                )

    def _local_bindings(
        self,
        function: Optional[_FunctionDef],
        body: List[ast.stmt],
        functions: Dict[str, _FunctionDef],
        allowed: Set[str],
    ) -> Set[str]:
        """Names in scope that provably hold a declared message type."""
        bindings: Set[str] = set()
        if function is not None:
            arguments = function.args
            for argument in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ):
                if _annotation_names(argument.annotation) & allowed:
                    bindings.add(argument.arg)
        for statement in body:
            for node in ast.walk(statement):
                value: Optional[ast.expr] = None
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, ast.AnnAssign):
                    if _annotation_names(node.annotation) & allowed and isinstance(
                        node.target, ast.Name
                    ):
                        bindings.add(node.target.id)
                    continue
                if value is None or not isinstance(value, ast.Call):
                    continue
                callee = terminal_name(value.func)
                if callee is None:
                    continue
                if callee in allowed or _returns_message(
                    functions.get(callee), allowed
                ):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            bindings.add(target.id)
        return bindings

    def _payload_ok(
        self,
        payload: ast.expr,
        bindings: Set[str],
        functions: Dict[str, _FunctionDef],
        allowed: Set[str],
    ) -> bool:
        if isinstance(payload, ast.Call):
            callee = terminal_name(payload.func)
            return callee is not None and (
                callee in allowed
                or _returns_message(functions.get(callee), allowed)
            )
        if isinstance(payload, ast.Name):
            return payload.id in bindings
        return False

    # -- message field hygiene -----------------------------------------------------

    def _check_message_fields(self, source: SourceFile) -> Iterator[Finding]:
        if not source.path.endswith("procpool/messages.py"):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                live = _annotation_names(statement.annotation) & _LIVE_HANDLE_TYPES
                if live:
                    yield self.finding(
                        source,
                        statement.lineno,
                        f"message field of {node.name} is annotated with a "
                        f"live-handle type ({', '.join(sorted(live))}) — "
                        "messages must carry only plain picklable values "
                        "(paths, numbers, strings, tuples, dicts)",
                    )


RULE = Ra107()
