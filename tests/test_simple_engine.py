"""Tests for the Lemma 3 engine (simple CXRPQs)."""

import pytest

from repro.core.alphabet import Alphabet
from repro.core.errors import FragmentError
from repro.engine.generic import evaluate_generic
from repro.engine.simple import evaluate_simple, evaluate_simple_components
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import random_graph
from repro.queries import CXRPQ

ABC = Alphabet("abc")


def code_db() -> GraphDatabase:
    """Two branches that agree on their first symbol, plus decoys."""
    return GraphDatabase.from_edges(
        [
            ("s", "a", "p"),
            ("p", "c", "q"),
            ("s", "a", "u"),
            ("u", "b", "v"),
            ("s", "b", "w"),
            ("w", "b", "x1"),
            ("s", "c", "d"),
        ]
    )


class TestBasics:
    def test_requires_simple_query(self):
        non_simple = CXRPQ([("x", "w{a}|b", "y")])
        with pytest.raises(FragmentError):
            evaluate_simple(non_simple, code_db())

    def test_single_edge_with_definition(self):
        query = CXRPQ([("x", "w{a|b}c", "y")], ("x", "y"))
        result = evaluate_simple(query, code_db())
        assert result.tuples == {("s", "q")}

    def test_definition_and_reference_across_edges(self):
        query = CXRPQ([("x", "w{a|b}", "y"), ("x", "&w b", "z")], ("y", "z"))
        result = evaluate_simple(query, code_db())
        # The first symbols of both paths must agree.
        assert ("u", "v") in result.tuples or ("p", "v") in result.tuples
        assert ("w", "x1") in result.tuples
        # 'a' followed by 'b' path vs 'b' start: mismatching codes excluded.
        assert all(pair[1] != "q" for pair in result.tuples)

    def test_reference_of_free_variable_is_existential_but_shared(self):
        query = CXRPQ([("x", "&w", "y"), ("x", "&w", "z")], ("y", "z"))
        db = GraphDatabase.from_edges([("s", "a", "t1"), ("s", "a", "t2"), ("s", "b", "t3")])
        result = evaluate_simple(query, db)
        assert ("t1", "t2") in result.tuples
        assert ("t1", "t3") not in result.tuples
        # The empty word is allowed for a free variable, matching s to itself.
        assert ("s", "s") in result.tuples

    def test_definition_with_reference_body_alias(self):
        # w{&v} aliases w to v (the Lemma 3 preprocessing step).
        query = CXRPQ([("x", "v{a|b}", "y"), ("y", "w{&v}", "z"), ("z", "&w", "t")], ("x", "t"))
        db = GraphDatabase.from_edges(
            [(0, "a", 1), (1, "a", 2), (2, "a", 3), (0, "b", 4), (4, "a", 5), (5, "b", 6)]
        )
        result = evaluate_simple(query, db)
        assert (0, 3) in result.tuples
        assert (0, 6) not in result.tuples

    def test_boolean_short_circuit(self):
        query = CXRPQ([("x", "w{a}", "y"), ("y", "&w", "z")])
        result = evaluate_simple(query, code_db())
        assert result.boolean is False
        db = GraphDatabase.from_edges([(0, "a", 1), (1, "a", 2)])
        assert evaluate_simple(query, db).boolean is True

    def test_image_bound_restricts_variable_words(self):
        query = CXRPQ([("x", "w{a+}", "y"), ("y", "&w", "z")], ("x", "z"))
        db = GraphDatabase.from_edges([(0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 4)])
        unrestricted = evaluate_simple(query, db)
        assert (0, 2) in unrestricted.tuples and (0, 4) in unrestricted.tuples
        bounded = evaluate_simple(query, db, image_bound=1)
        assert (0, 2) in bounded.tuples and (0, 4) not in bounded.tuples

    def test_forced_epsilon_variables(self):
        # Simulates evaluating one disjunct of a larger query: the definition
        # of w lives in a non-chosen branch, so &w must match the empty word.
        query = CXRPQ([("x", "a &w", "y")], ("x", "y"))
        db = GraphDatabase.from_edges([(0, "a", 1), (1, "b", 2)])
        result = evaluate_simple_components(
            query.pattern,
            list(query.conjunctive_xregex.components),
            query.output_variables,
            db,
            defined_globally={"w"},
        )
        assert result.tuples == {(0, 1)}

    def test_witness_words(self):
        query = CXRPQ([("x", "w{a|b}", "y"), ("x", "&w b", "z")], ("y", "z"))
        db = code_db()
        result = evaluate_simple(query, db, collect_witnesses=True)
        assert result.matches
        for match in result.matches:
            morphism = match.as_dict()
            assert db.path_exists(morphism["x"], match.words[0], morphism["y"])
            assert db.path_exists(morphism["x"], match.words[1], morphism["z"])
            # Both words start with the same code symbol.
            assert match.words[1][:1] == match.words[0]


class TestCrossValidation:
    def test_agrees_with_generic_oracle_on_random_graphs(self):
        query = CXRPQ([("x", "w{a|b}c*", "y"), ("x", "&w", "z")], ("y", "z"))
        for seed in range(4):
            db = random_graph(5, 10, ABC, seed=seed)
            fast = evaluate_simple(query, db)
            oracle = evaluate_generic(query, db, max_path_length=3)
            assert oracle.tuples <= fast.tuples
            short = {t for t in fast.tuples}
            # Every oracle tuple must be found; the engines agree on Boolean.
            assert fast.boolean == bool(fast.tuples)
            assert oracle.boolean <= fast.boolean
