"""Cost-based join planning (planner v2), with the heuristic v1 as an A/B oracle.

:mod:`repro.engine.joins` used to embed its planning decisions inline:
``_select_edge`` costed unbound edges with ``(2, size_hint())`` — for a lazy
CSR relation a flat, selectivity-blind ``n²`` — and an all-lazy pattern
component forced ``min(deferred)``, the *lowest-index* edge, into full
materialisation regardless of how dense its relation was.  This module
extracts those decisions into an explicit :class:`JoinPlan` whose costs come
from the per-database cardinality sketches of
:mod:`repro.graphdb.stats`:

* **edge selection** — an unbound edge's branching cost is its *estimated*
  relation cardinality (exact once materialised), so the backtracking
  search binds through selective relations first;
* **forced-edge choice** — an all-lazy component forces the edge whose
  relation is estimated *cheapest to materialise*, not the one that happens
  to come first in the pattern;
* **activation direction** — a lazy edge with both endpoint domains known
  expands from the side whose estimated frontier (domain size × expected
  per-node fanout, direction-aware) is smaller, not merely the smaller
  domain.

Estimates never affect answers — only the order and direction work happens
in; the differential harness pins v1 and v2 to byte-identical results.

The previous heuristics survive verbatim behind :func:`planner_v2_disabled`
(a :class:`~contextvars.ContextVar` switch, the same pattern as the kernel
arms ``csr_kernel_disabled``/``bitset_kernel_disabled``), so every plan v2
produces can be cross-checked against the v1 oracle, and regressions can be
bisected to planning alone.  Which arm a plan uses is captured at plan
*construction*, so one plan never mixes arms mid-join.

Module-level counters (:func:`planner_stats`) record what the planner did —
edges planned, activation directions, forced materialisations and the pair
counts they produced — and surface through ``repro evaluate --stats`` /
``serve --stats`` via :func:`repro.service.telemetry.render_planner_stats`.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Sequence, Set, Tuple

Node = Hashable

_PLANNER_V2: ContextVar[bool] = ContextVar("repro_planner_v2_enabled", default=True)


def planner_v2_enabled() -> bool:
    """Whether new plans use the cost-based v2 estimates (default)."""
    return _PLANNER_V2.get()


@contextmanager
def planner_v2_disabled() -> Iterator[None]:
    """Context manager reverting new plans to the v1 heuristics.

    The A/B oracle arm: inside the context, ``size_hint`` costs, the
    lowest-index forced edge and the smaller-domain activation direction
    are used — exactly the pre-planner behaviour.  Backed by a
    :class:`~contextvars.ContextVar`, so nested and concurrent uses compose.
    """
    token = _PLANNER_V2.set(False)
    try:
        yield
    finally:
        _PLANNER_V2.reset(token)


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------

#: What the counters start from (also documents the full counter set).
_ZERO_COUNTERS = {
    "plans": 0,
    "edges_planned": 0,
    "forward_activations": 0,
    "backward_activations": 0,
    "forced_materialisations": 0,
    "forced_pairs": 0,
}

_COUNTERS: Dict[str, int] = dict(_ZERO_COUNTERS)


def planner_stats() -> Dict[str, int]:
    """A snapshot of the process-wide planner decision counters.

    ``plans``/``edges_planned`` count constructed plans and the edges they
    cost; ``forward_activations``/``backward_activations`` count lazy-edge
    expansion directions; ``forced_materialisations`` counts all-lazy
    components that forced a full relation, and ``forced_pairs`` the total
    pairs those forced materialisations produced — the quantity planner v2
    exists to shrink.
    """
    return dict(_COUNTERS)


def reset_planner_stats() -> None:
    """Zero the planner decision counters (tests and benchmarks)."""
    _COUNTERS.update(_ZERO_COUNTERS)


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


class JoinPlan:
    """The planning decisions of one backtracking join, estimate-driven.

    Built once per join from the edge endpoints and (possibly lazy)
    relations; the join consults it at each decision point.  Per-edge
    unbound-cost estimates are memoised — within one plan an edge's
    estimate is stable even as its lazy relation materialises, keeping the
    edge order deterministic for the whole search.
    """

    __slots__ = ("edge_endpoints", "edge_relations", "v2", "_unbound_costs")

    def __init__(
        self,
        edge_endpoints: Sequence[Tuple[str, str]],
        edge_relations: Sequence,
        v2: Optional[bool] = None,
    ):
        self.edge_endpoints = edge_endpoints
        self.edge_relations = edge_relations
        # The arm is captured at construction: a plan never mixes v1 and v2
        # decisions even if the context flag flips mid-join.
        self.v2 = planner_v2_enabled() if v2 is None else v2
        self._unbound_costs: Dict[int, int] = {}
        _COUNTERS["plans"] += 1
        _COUNTERS["edges_planned"] += len(edge_endpoints)

    # -- per-edge cost estimates -------------------------------------------------

    def unbound_cost(self, index: int) -> int:
        """The branching cost of enumerating edge ``index`` fully unbound.

        v2: the estimated relation cardinality (``estimate_pairs`` — exact
        for materialised relations, a statistics sketch for lazy ones).
        v1: the raw ``size_hint`` (``n²`` for an unmaterialised lazy
        relation).  Memoised per edge for the lifetime of the plan.
        """
        cost = self._unbound_costs.get(index)
        if cost is None:
            relation = self.edge_relations[index]
            if self.v2:
                estimate = getattr(relation, "estimate_pairs", None)
                cost = estimate() if estimate is not None else relation.size_hint()
            else:
                cost = relation.size_hint()
            self._unbound_costs[index] = cost
        return cost

    # -- decision points ---------------------------------------------------------

    def forced_edge(self, deferred: Set[int]) -> int:
        """Which deferred lazy edge an all-lazy component materialises.

        v2 forces the edge whose relation is estimated cheapest to
        materialise; v1 forces the lowest index.  Ties break on index, so
        v2 degrades to exactly v1 when no statistics discriminate.
        """
        if self.v2:
            return min(deferred, key=lambda index: (self.unbound_cost(index), index))
        return min(deferred)

    def note_forced(self, pair_count: int) -> None:
        """Record one forced materialisation and the pairs it produced."""
        _COUNTERS["forced_materialisations"] += 1
        _COUNTERS["forced_pairs"] += pair_count

    def activation_direction(
        self,
        index: int,
        domain_source: Optional[Set[Node]],
        domain_target: Optional[Set[Node]],
    ) -> str:
        """``"forward"`` or ``"backward"``: which side a lazy edge expands from.

        With only one domain known there is no choice.  With both known,
        v1 compares the raw domain sizes; v2 weights each by the expected
        per-node fanout of the relation's labels in that direction (the
        statistics' reachability sketch), since expanding few high-fanout
        nodes can cost more than many low-fanout ones.  Falls back to the
        v1 comparison when no statistics are available.  The direction
        never changes the expanded pair set — only the work to compute it.
        """
        direction = self._direction(index, domain_source, domain_target)
        if direction == "forward":
            _COUNTERS["forward_activations"] += 1
        else:
            _COUNTERS["backward_activations"] += 1
        return direction

    def _direction(
        self,
        index: int,
        domain_source: Optional[Set[Node]],
        domain_target: Optional[Set[Node]],
    ) -> str:
        if domain_target is None:
            return "forward"
        if domain_source is None:
            return "backward"
        if self.v2:
            relation = self.edge_relations[index]
            statistics_of = getattr(relation, "plan_statistics", None)
            statistics = statistics_of() if statistics_of is not None else None
            if statistics is not None:
                labels = relation.labels()
                forward_cost = statistics.estimate_frontier(
                    len(domain_source), labels, forward=True
                )
                backward_cost = statistics.estimate_frontier(
                    len(domain_target), labels, forward=False
                )
                if forward_cost != backward_cost:
                    return "forward" if forward_cost < backward_cost else "backward"
                # Fall through to the v1 tie-break: identical estimates must
                # not flip the deterministic choice.
        return (
            "forward" if len(domain_source) <= len(domain_target) else "backward"
        )
