"""Semantics of xregex: ref-languages, matching and bounded languages.

The language ``L(alpha)`` of an xregex is defined in the paper via ref-words:
``L(alpha) = deref(L_ref(alpha))`` (Section 3).  This module provides

* :func:`compile_ref_nfa` — an NFA for the ref-language ``L_ref(alpha)``
  (the classical regular expression ``alpha_ref`` over the extended alphabet),
* :func:`enumerate_ref_words` / :func:`enumerate_language` — bounded
  enumeration of ref-words and of ``L(alpha)`` for small instances,
* :class:`MatchWitness` and :func:`match` — a backtracking matcher deciding
  ``w ∈ L(alpha)`` that also returns the variable mapping of a witness
  ref-word; the matcher supports the bounded-image languages ``L^{<=k}`` and
  the fixed-image languages ``L^{v̄}`` of Section 6 and the "existential"
  treatment of undefined variables needed by the conjunctive semantics
  (Section 3.1).

Matching xregex is NP-hard in general (see Section 8 of the paper), so the
matcher is meant for small words: tests, cross-validation oracles and the
constructions of Lemma 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.alphabet import Alphabet
from repro.core.errors import EvaluationError
from repro.core.words import all_words_up_to
from repro.automata.nfa import EPSILON_LABEL, NFA
from repro.regex import syntax as rx
from repro.regex.refwords import CloseToken, OpenToken, RefToken, RefWord, deref


# ---------------------------------------------------------------------------
# Ref-languages
# ---------------------------------------------------------------------------


def compile_ref_nfa(expr: rx.Xregex, alphabet: Optional[Alphabet] = None) -> NFA:
    """An NFA accepting ``L_ref(alpha)``, i.e. the ref-words of ``alpha``.

    Terminal symbols label transitions with single characters; variable
    definitions contribute :class:`OpenToken`/:class:`CloseToken` labels and
    references contribute :class:`RefToken` labels, exactly mirroring the
    construction of ``alpha_ref`` in Section 3.
    """
    nfa = NFA()
    final = nfa.add_state()
    _build_ref(nfa, expr, nfa.start, final, alphabet)
    nfa.set_accepting(final)
    return nfa


def _build_ref(
    nfa: NFA,
    expr: rx.Xregex,
    entry: int,
    exit_state: int,
    alphabet: Optional[Alphabet],
) -> None:
    if isinstance(expr, rx.Epsilon):
        nfa.add_transition(entry, EPSILON_LABEL, exit_state)
    elif isinstance(expr, rx.EmptySet):
        pass
    elif isinstance(expr, rx.Symbol):
        nfa.add_transition(entry, expr.char, exit_state)
    elif isinstance(expr, rx.AnySymbol):
        if alphabet is None:
            raise EvaluationError("a wildcard '.' requires an explicit alphabet")
        for symbol in alphabet:
            nfa.add_transition(entry, symbol, exit_state)
    elif isinstance(expr, rx.SymbolClass):
        if expr.negated and alphabet is None:
            raise EvaluationError("a negated symbol class requires an explicit alphabet")
        symbols = expr.resolve(alphabet) if alphabet is not None else expr.symbols
        for symbol in sorted(symbols):
            nfa.add_transition(entry, symbol, exit_state)
    elif isinstance(expr, rx.Concat):
        current = entry
        for part in expr.parts[:-1]:
            nxt = nfa.add_state()
            _build_ref(nfa, part, current, nxt, alphabet)
            current = nxt
        _build_ref(nfa, expr.parts[-1], current, exit_state, alphabet)
    elif isinstance(expr, rx.Alternation):
        for option in expr.options:
            _build_ref(nfa, option, entry, exit_state, alphabet)
    elif isinstance(expr, rx.Plus):
        inner_entry = nfa.add_state()
        inner_exit = nfa.add_state()
        nfa.add_transition(entry, EPSILON_LABEL, inner_entry)
        _build_ref(nfa, expr.inner, inner_entry, inner_exit, alphabet)
        nfa.add_transition(inner_exit, EPSILON_LABEL, inner_entry)
        nfa.add_transition(inner_exit, EPSILON_LABEL, exit_state)
    elif isinstance(expr, rx.Star):
        inner_entry = nfa.add_state()
        inner_exit = nfa.add_state()
        nfa.add_transition(entry, EPSILON_LABEL, inner_entry)
        nfa.add_transition(entry, EPSILON_LABEL, exit_state)
        _build_ref(nfa, expr.inner, inner_entry, inner_exit, alphabet)
        nfa.add_transition(inner_exit, EPSILON_LABEL, inner_entry)
        nfa.add_transition(inner_exit, EPSILON_LABEL, exit_state)
    elif isinstance(expr, rx.Optional):
        nfa.add_transition(entry, EPSILON_LABEL, exit_state)
        _build_ref(nfa, expr.inner, entry, exit_state, alphabet)
    elif isinstance(expr, rx.VarRef):
        nfa.add_transition(entry, RefToken(expr.name), exit_state)
    elif isinstance(expr, rx.VarDef):
        open_state = nfa.add_state()
        close_state = nfa.add_state()
        nfa.add_transition(entry, OpenToken(expr.name), open_state)
        _build_ref(nfa, expr.body, open_state, close_state, alphabet)
        nfa.add_transition(close_state, CloseToken(expr.name), exit_state)
    else:  # pragma: no cover - exhaustive over the AST
        raise EvaluationError(f"unsupported xregex node {expr!r}")


def enumerate_ref_words(
    expr: rx.Xregex,
    alphabet: Optional[Alphabet] = None,
    max_tokens: int = 8,
) -> Iterator[RefWord]:
    """Enumerate ref-words of ``alpha`` with at most ``max_tokens`` tokens."""
    nfa = compile_ref_nfa(expr, alphabet)
    yield from nfa.enumerate_words(max_tokens)


def enumerate_language(
    expr: rx.Xregex,
    alphabet: Alphabet,
    max_length: int,
    max_image_length: Optional[int] = None,
) -> List[str]:
    """All words of ``L(alpha)`` (or ``L^{<=k}(alpha)``) up to ``max_length``.

    Brute-force: candidate words over the alphabet are filtered with the
    matcher, which is only feasible for small alphabets and lengths; intended
    for tests and cross-validation.
    """
    words = []
    for candidate in all_words_up_to(alphabet, max_length):
        if match(expr, candidate, alphabet, max_image_length=max_image_length) is not None:
            words.append(candidate)
    return words


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchWitness:
    """A successful match of a word against an xregex.

    ``vmap`` maps every variable that received a value to its image; images
    of variables not mentioned are the empty word.  ``fixed`` lists the
    variables whose image was produced by an instantiated definition (as
    opposed to being forced through references only).
    """

    word: str
    vmap: Dict[str, str]
    fixed: frozenset

    def image(self, variable: str) -> str:
        return self.vmap.get(variable, "")


class _Bindings:
    """Immutable-ish variable environment used by the backtracking matcher."""

    __slots__ = ("values", "fixed")

    def __init__(self, values: Optional[Dict[str, str]] = None, fixed: Optional[Set[str]] = None):
        self.values: Dict[str, str] = values or {}
        self.fixed: Set[str] = fixed or set()

    def copy_with(self, name: str, value: str, fixed: bool) -> "_Bindings":
        values = dict(self.values)
        values[name] = value
        fixed_set = set(self.fixed)
        if fixed:
            fixed_set.add(name)
        return _Bindings(values, fixed_set)

    def value(self, name: str) -> Optional[str]:
        return self.values.get(name)

    def is_fixed(self, name: str) -> bool:
        return name in self.fixed


def match(
    expr: rx.Xregex,
    word: str,
    alphabet: Optional[Alphabet] = None,
    *,
    max_image_length: Optional[int] = None,
    required_images: Optional[Mapping[str, str]] = None,
    existential_variables: Iterable[str] = (),
    initial_bindings: Optional[Mapping[str, str]] = None,
) -> Optional[MatchWitness]:
    """Decide ``word ∈ L(alpha)`` and return a witness, or ``None``.

    Parameters
    ----------
    max_image_length:
        When given, restrict every variable image to length at most ``k``;
        this decides membership in ``L^{<=k}(alpha)`` (Section 6).
    required_images:
        When given, only accept witnesses whose variable mapping agrees with
        the supplied images; this decides membership in ``L^{v̄}(alpha)``.
    existential_variables:
        Variables that may keep an arbitrary image even though no definition
        is instantiated for them (used for the conjunctive semantics of
        Section 3.1, where undefined variables receive dummy ``x{Σ*}``
        definitions).
    initial_bindings:
        Pre-set variable images (treated as already fixed); used when
        threading an environment through the components of a conjunctive
        xregex.
    """
    for result in match_all(
        expr,
        word,
        alphabet,
        max_image_length=max_image_length,
        required_images=required_images,
        existential_variables=existential_variables,
        initial_bindings=initial_bindings,
    ):
        return result
    return None


def matches(expr: rx.Xregex, word: str, alphabet: Optional[Alphabet] = None, **kwargs) -> bool:
    """Boolean version of :func:`match`."""
    return match(expr, word, alphabet, **kwargs) is not None


def match_all(
    expr: rx.Xregex,
    word: str,
    alphabet: Optional[Alphabet] = None,
    *,
    max_image_length: Optional[int] = None,
    required_images: Optional[Mapping[str, str]] = None,
    existential_variables: Iterable[str] = (),
    initial_bindings: Optional[Mapping[str, str]] = None,
) -> Iterator[MatchWitness]:
    """Yield every distinct witness variable mapping for ``word ∈ L(alpha)``."""
    existential = set(existential_variables)
    required = dict(required_images or {})
    start_bindings = _Bindings()
    for name, value in (initial_bindings or {}).items():
        start_bindings = start_bindings.copy_with(name, value, fixed=True)
    defined_here = expr.defined_variables()
    seen: Set[Tuple[Tuple[str, str], ...]] = set()
    for end, bindings in _match_node(
        expr, word, 0, start_bindings, alphabet, max_image_length, required
    ):
        if end != len(word):
            continue
        if not _finalize(bindings, defined_here, existential, required):
            continue
        vmap = dict(bindings.values)
        key = tuple(sorted(vmap.items()))
        if key in seen:
            continue
        seen.add(key)
        yield MatchWitness(word=word, vmap=vmap, fixed=frozenset(bindings.fixed))


def _finalize(
    bindings: _Bindings,
    defined_here: Set[str],
    existential: Set[str],
    required: Mapping[str, str],
) -> bool:
    for name, value in bindings.values.items():
        if bindings.is_fixed(name):
            continue
        if value == "":
            continue
        if name in existential:
            continue
        # A non-empty image was forced through references only: under deref
        # semantics an uninstantiated variable denotes the empty word.
        return False
    for name, value in required.items():
        actual = bindings.values.get(name, "")
        if actual != value:
            if name in existential and name not in bindings.values:
                continue
            return False
    return True


def _match_node(
    expr: rx.Xregex,
    word: str,
    pos: int,
    bindings: _Bindings,
    alphabet: Optional[Alphabet],
    max_image_length: Optional[int],
    required: Mapping[str, str],
) -> Iterator[Tuple[int, _Bindings]]:
    if isinstance(expr, rx.Epsilon):
        yield pos, bindings
    elif isinstance(expr, rx.EmptySet):
        return
    elif isinstance(expr, rx.Symbol):
        if pos < len(word) and word[pos] == expr.char:
            yield pos + 1, bindings
    elif isinstance(expr, rx.AnySymbol):
        if pos < len(word) and (alphabet is None or word[pos] in alphabet):
            yield pos + 1, bindings
    elif isinstance(expr, rx.SymbolClass):
        if pos < len(word):
            symbols = expr.resolve(alphabet) if (expr.negated and alphabet is not None) else expr.symbols
            member = word[pos] in symbols
            if expr.negated and alphabet is None:
                member = word[pos] not in expr.symbols
            if member:
                yield pos + 1, bindings
    elif isinstance(expr, rx.Concat):
        yield from _match_sequence(expr.parts, word, pos, bindings, alphabet, max_image_length, required)
    elif isinstance(expr, rx.Alternation):
        for option in expr.options:
            yield from _match_node(option, word, pos, bindings, alphabet, max_image_length, required)
    elif isinstance(expr, rx.Optional):
        yield pos, bindings
        yield from _match_node(expr.inner, word, pos, bindings, alphabet, max_image_length, required)
    elif isinstance(expr, rx.Star):
        yield from _match_repeat(expr.inner, word, pos, bindings, alphabet, max_image_length, required, allow_zero=True)
    elif isinstance(expr, rx.Plus):
        yield from _match_repeat(expr.inner, word, pos, bindings, alphabet, max_image_length, required, allow_zero=False)
    elif isinstance(expr, rx.VarRef):
        yield from _match_reference(expr.name, word, pos, bindings, max_image_length, required)
    elif isinstance(expr, rx.VarDef):
        yield from _match_definition(expr, word, pos, bindings, alphabet, max_image_length, required)
    else:  # pragma: no cover - exhaustive over the AST
        raise EvaluationError(f"unsupported xregex node {expr!r}")


def _match_sequence(
    parts: Sequence[rx.Xregex],
    word: str,
    pos: int,
    bindings: _Bindings,
    alphabet: Optional[Alphabet],
    max_image_length: Optional[int],
    required: Mapping[str, str],
) -> Iterator[Tuple[int, _Bindings]]:
    if not parts:
        yield pos, bindings
        return
    head, tail = parts[0], parts[1:]
    for mid, mid_bindings in _match_node(head, word, pos, bindings, alphabet, max_image_length, required):
        yield from _match_sequence(tail, word, mid, mid_bindings, alphabet, max_image_length, required)


def _match_repeat(
    inner: rx.Xregex,
    word: str,
    pos: int,
    bindings: _Bindings,
    alphabet: Optional[Alphabet],
    max_image_length: Optional[int],
    required: Mapping[str, str],
    allow_zero: bool,
) -> Iterator[Tuple[int, _Bindings]]:
    if allow_zero:
        yield pos, bindings
    for mid, mid_bindings in _match_node(inner, word, pos, bindings, alphabet, max_image_length, required):
        if mid == pos:
            if not allow_zero:
                yield mid, mid_bindings
            continue
        yield mid, mid_bindings
        yield from _match_repeat(inner, word, mid, mid_bindings, alphabet, max_image_length, required, allow_zero=False)


def _match_reference(
    name: str,
    word: str,
    pos: int,
    bindings: _Bindings,
    max_image_length: Optional[int],
    required: Mapping[str, str],
) -> Iterator[Tuple[int, _Bindings]]:
    bound = bindings.value(name)
    if bound is not None:
        if word.startswith(bound, pos):
            yield pos + len(bound), bindings
        return
    if name in required:
        candidates = [required[name]]
        for candidate in candidates:
            if max_image_length is not None and len(candidate) > max_image_length:
                continue
            if word.startswith(candidate, pos):
                yield pos + len(candidate), bindings.copy_with(name, candidate, fixed=False)
        return
    limit = len(word) - pos
    if max_image_length is not None:
        limit = min(limit, max_image_length)
    for length in range(limit + 1):
        candidate = word[pos:pos + length]
        yield pos + length, bindings.copy_with(name, candidate, fixed=False)


def _match_definition(
    expr: rx.VarDef,
    word: str,
    pos: int,
    bindings: _Bindings,
    alphabet: Optional[Alphabet],
    max_image_length: Optional[int],
    required: Mapping[str, str],
) -> Iterator[Tuple[int, _Bindings]]:
    if bindings.is_fixed(expr.name):
        # A second instantiation of the same variable only happens for
        # non-sequential xregex; reject such witnesses.
        return
    for end, body_bindings in _match_node(
        expr.body, word, pos, bindings, alphabet, max_image_length, required
    ):
        image = word[pos:end]
        if max_image_length is not None and len(image) > max_image_length:
            continue
        if expr.name in required and required[expr.name] != image:
            continue
        previous = body_bindings.value(expr.name)
        if previous is not None and previous != image:
            continue
        yield end, body_bindings.copy_with(expr.name, image, fixed=True)
