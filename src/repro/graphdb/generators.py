"""Synthetic graph-database generators.

The paper contains no datasets; every construction it *describes* is
generated here:

* random edge-labelled multigraphs (the generic workload),
* the genealogy/supervision graphs motivating Figure 1,
* the "hidden communication network" motivating Figure 2 (query G3),
* two node-disjoint labelled paths ``D_{n1,n2}`` (proof of Theorem 9),
* labelled path databases and pumped variants (proof of Lemma 16),
* conversions from NFAs to databases (proof of Theorem 1).

All generators take an explicit ``seed`` so workloads are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.alphabet import Alphabet
from repro.automata.nfa import EPSILON_LABEL, NFA
from repro.graphdb.database import GraphDatabase, Node


def random_graph(
    num_nodes: int,
    num_edges: int,
    alphabet: Alphabet,
    seed: int = 0,
    ensure_connected: bool = False,
) -> GraphDatabase:
    """A random directed multigraph with uniformly chosen labelled arcs."""
    rng = random.Random(seed)
    symbols = list(alphabet)
    db = GraphDatabase(alphabet)
    for node in range(num_nodes):
        db.add_node(node)
    if ensure_connected and num_nodes > 1:
        order = list(range(num_nodes))
        rng.shuffle(order)
        for previous, current in zip(order, order[1:]):
            db.add_edge(previous, rng.choice(symbols), current)
    while db.num_edges() < num_edges:
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        db.add_edge(source, rng.choice(symbols), target)
    return db


def path_database(word: str, start: Node = "v0", prefix: str = "v") -> Tuple[GraphDatabase, Node, Node]:
    """A database that is a single path labelled ``word``.

    Returns ``(db, first_node, last_node)``.
    """
    db = GraphDatabase()
    db.add_node(start)
    current = start
    for index, symbol in enumerate(word, start=1):
        nxt = f"{prefix}{index}"
        db.add_edge(current, symbol, nxt)
        current = nxt
    return db, start, current


def cycle_database(word: str, prefix: str = "c") -> GraphDatabase:
    """A database that is a single cycle labelled ``word`` (``word`` non-empty)."""
    db = GraphDatabase()
    nodes = [f"{prefix}{index}" for index in range(len(word))]
    for index, symbol in enumerate(word):
        db.add_edge(nodes[index], symbol, nodes[(index + 1) % len(word)])
    return db


def two_path_database(first_word: str, second_word: str) -> Tuple[GraphDatabase, Dict[str, Node]]:
    """The database ``D_{n1,n2}`` of Theorem 9: two node-disjoint labelled paths.

    Returns the database and a dictionary with the endpoints
    ``{"r_first", "r_last", "s_first", "s_last"}``.
    """
    db = GraphDatabase()
    db.add_node("r0")
    db.add_node("s0")
    current = "r0"
    for index, symbol in enumerate(first_word, start=1):
        nxt = f"r{index}"
        db.add_edge(current, symbol, nxt)
        current = nxt
    r_last = current
    current = "s0"
    for index, symbol in enumerate(second_word, start=1):
        nxt = f"s{index}"
        db.add_edge(current, symbol, nxt)
        current = nxt
    endpoints = {"r_first": "r0", "r_last": r_last, "s_first": "s0", "s_last": current}
    return db, endpoints


def genealogy_graph(
    num_families: int,
    generations: int,
    seed: int = 0,
    supervision_probability: float = 0.4,
) -> GraphDatabase:
    """A synthetic genealogy with supervision edges (Figure 1 scenario).

    Nodes are persons; an arc ``(u, 'p', v)`` means "u is a biological parent
    of v" and ``(u, 's', v)`` means "v is u's PhD supervisor", following the
    reading used in the introduction of the paper.
    """
    rng = random.Random(seed)
    db = GraphDatabase(Alphabet("ps"))
    people: List[List[str]] = []
    for generation in range(generations):
        layer = [f"g{generation}_f{family}" for family in range(num_families)]
        for person in layer:
            db.add_node(person)
        people.append(layer)
    for generation in range(1, generations):
        for family in range(num_families):
            child = people[generation][family]
            parent = people[generation - 1][family]
            db.add_edge(parent, "p", child)
            if num_families > 1 and rng.random() < 0.3:
                other = people[generation - 1][rng.randrange(num_families)]
                if other != parent:
                    db.add_edge(other, "p", child)
    everyone = [person for layer in people for person in layer]
    for person in everyone:
        if rng.random() < supervision_probability:
            supervisor = rng.choice(everyone)
            if supervisor != person:
                db.add_edge(person, "s", supervisor)
    return db


def message_network(
    num_persons: int,
    message_symbols: str = "abc",
    num_messages: int | None = None,
    seed: int = 0,
    plant_hidden_channel: bool = True,
    hidden_code: str = "ab",
    hidden_repetitions: int = 2,
) -> Tuple[GraphDatabase, Dict[str, Node]]:
    """A synthetic messaging network (the scenario motivating query G3 of Figure 2).

    Nodes are persons, arcs are text messages.  When
    ``plant_hidden_channel`` is set, two suspects exchange a coded message
    sequence ``hidden_code`` with each other and both reach a mutual contact
    by repeating that sequence ``hidden_repetitions`` times, so that query G3
    of Figure 2 returns the pair of suspects.
    """
    rng = random.Random(seed)
    alphabet = Alphabet(message_symbols)
    symbols = list(alphabet)
    db = GraphDatabase(alphabet)
    persons = [f"person{i}" for i in range(num_persons)]
    for person in persons:
        db.add_node(person)
    if num_messages is None:
        num_messages = 3 * num_persons
    for _ in range(num_messages):
        sender, receiver = rng.sample(persons, 2) if num_persons > 1 else (persons[0], persons[0])
        db.add_edge(sender, rng.choice(symbols), receiver)
    planted: Dict[str, Node] = {}
    if plant_hidden_channel and num_persons >= 3:
        suspect_a, suspect_b, contact = persons[0], persons[1], persons[2]
        planted = {"suspect_a": suspect_a, "suspect_b": suspect_b, "contact": contact}
        _plant_coded_path(db, suspect_a, suspect_b, hidden_code, rng, persons)
        _plant_coded_path(db, suspect_b, suspect_a, hidden_code, rng, persons)
        _plant_coded_path(db, suspect_a, contact, hidden_code * hidden_repetitions, rng, persons)
        _plant_coded_path(db, suspect_b, contact, hidden_code * hidden_repetitions, rng, persons)
    return db, planted


def _plant_coded_path(
    db: GraphDatabase,
    source: Node,
    target: Node,
    code: str,
    rng: random.Random,
    persons: Sequence[Node],
) -> None:
    current = source
    for index, symbol in enumerate(code):
        is_last = index == len(code) - 1
        nxt = target if is_last else rng.choice(persons)
        db.add_edge(current, symbol, nxt)
        current = nxt


def nfa_to_database(nfa: NFA, prefix: str) -> Tuple[GraphDatabase, Node, List[Node]]:
    """Interpret an NFA as a graph database (states become nodes).

    Epsilon transitions are not allowed (graph databases have no epsilon
    arcs).  Returns the database, the node of the start state and the nodes
    of the accepting states.
    """
    db = GraphDatabase()
    node_of = {state: f"{prefix}q{state}" for state in range(nfa.num_states)}
    for state in range(nfa.num_states):
        db.add_node(node_of[state])
    for source, label, target in nfa.iter_transitions():
        if label is EPSILON_LABEL:
            raise ValueError("nfa_to_database requires an epsilon-free NFA")
        db.add_edge(node_of[source], label, node_of[target])
    return db, node_of[nfa.start], [node_of[state] for state in sorted(nfa.accepting)]


def random_nfa(
    num_states: int,
    alphabet: Alphabet,
    density: float = 1.5,
    seed: int = 0,
    num_accepting: int = 1,
) -> NFA:
    """A random epsilon-free NFA (used for the Theorem 1 / Theorem 3 workloads)."""
    rng = random.Random(seed)
    nfa = NFA()
    states = [nfa.start] + [nfa.add_state() for _ in range(num_states - 1)]
    symbols = list(alphabet)
    num_transitions = max(1, int(density * num_states))
    for _ in range(num_transitions):
        nfa.add_transition(rng.choice(states), rng.choice(symbols), rng.choice(states))
    # Guarantee a path start -> last state so the automaton is rarely empty.
    chain = states[:]
    rng.shuffle(chain)
    if chain[0] != nfa.start:
        chain.insert(0, nfa.start)
    for previous, current in zip(chain, chain[1:]):
        nfa.add_transition(previous, rng.choice(symbols), current)
    accepting = rng.sample(states, min(num_accepting, len(states)))
    for state in accepting:
        nfa.set_accepting(state)
    return nfa


def deep_chain(
    chain_length: int,
    hub_fanout: Optional[int] = None,
    marker_edges: int = 3,
    seed: int = 0,
) -> GraphDatabase:
    """An adversarial family for the join planner: long chain + high-fanout hub.

    The construction (labels ``a``/``b``/``c``):

    * a chain ``c0 -a-> c1 -a-> … -a-> c{L-1}`` of ``chain_length`` nodes;
    * a single ``hub`` node with ``b`` arcs *to* ``hub_fanout`` chain nodes
      (default: half the chain, chosen deterministically from ``seed``) and
      a ``b`` arc *from every chain node back* — so the ``b+`` reachability
      relation is near-quadratic: every chain node reaches the hub in one
      step and all its spokes in two;
    * ``marker_edges`` selective ``c`` arcs near the chain head
      (``c_i -c-> c_{i+1}``).

    An all-lazy component like ``(x) -b+-> (y) -c-> (z)`` is the worst case
    for a lowest-index forced-edge choice: forcing the ``b+`` edge
    materialises the near-quadratic hub relation, while forcing the ``c``
    edge yields ``marker_edges`` pairs whose columns then activate the
    ``b+`` edge row-wise.  Cardinality statistics see exactly this (the
    ``c`` label is rare, ``b`` is dense), which is what planner v2 keys on.
    """
    if chain_length < 2:
        raise ValueError("deep_chain needs a chain of at least 2 nodes")
    if hub_fanout is None:
        hub_fanout = max(1, chain_length // 2)
    hub_fanout = min(hub_fanout, chain_length)
    marker_edges = min(marker_edges, chain_length - 1)
    rng = random.Random(seed)
    db = GraphDatabase(Alphabet("abc"))
    chain = [f"c{index}" for index in range(chain_length)]
    for node in chain:
        db.add_node(node)
    db.add_node("hub")
    for previous, current in zip(chain, chain[1:]):
        db.add_edge(previous, "a", current)
    # Spokes first include the chain head so the marker region is reachable
    # through the hub (keeping b+ ∘ c non-empty), the rest sampled.
    spokes = {chain[0]}
    spokes.update(rng.sample(chain, hub_fanout))
    for spoke in sorted(spokes):
        db.add_edge("hub", "b", spoke)
    for node in chain:
        db.add_edge(node, "b", "hub")
    for index in range(marker_edges):
        db.add_edge(chain[index], "c", chain[index + 1])
    return db


def scale_free_graph(
    num_nodes: int,
    alphabet: Optional[Alphabet] = None,
    edges_per_node: int = 2,
    seed: int = 0,
) -> GraphDatabase:
    """A degree-skewed graph grown by preferential attachment (hot-key family).

    Each new node attaches ``edges_per_node`` labelled arcs whose far
    endpoint is sampled proportionally to current degree (the classic
    rich-get-richer construction), alternating direction so both in- and
    out-hubs emerge.  The result is the skewed-degree regime the uniform
    :func:`random_graph` never produces: a few hub nodes touch a large
    fraction of all edges, so per-source row caches and eviction paths see
    genuinely hot keys.  Node names are strings (``n0`` …), matching the
    on-disk formats.
    """
    if num_nodes < 2:
        raise ValueError("scale_free_graph needs at least 2 nodes")
    if alphabet is None:
        alphabet = Alphabet("abc")
    rng = random.Random(seed)
    symbols = list(alphabet)
    db = GraphDatabase(alphabet)
    names = [f"n{index}" for index in range(num_nodes)]
    for name in names:
        db.add_node(name)
    db.add_edge(names[0], symbols[0], names[1])
    # One endpoint entry per edge endpoint: sampling uniformly from this
    # list IS degree-proportional sampling.
    endpoints: List[Node] = [names[0], names[1]]
    for index in range(2, num_nodes):
        source = names[index]
        for arc in range(max(1, edges_per_node)):
            target = endpoints[rng.randrange(len(endpoints))]
            if target == source:
                target = names[rng.randrange(index)]
            label = symbols[rng.randrange(len(symbols))]
            if arc % 2 == 0:
                db.add_edge(source, label, target)
            else:
                db.add_edge(target, label, source)
            endpoints.append(source)
            endpoints.append(target)
    return db


def temporal_layered_graph(
    num_nodes: int,
    ticks: int = 4,
    alphabet: Optional[Alphabet] = None,
    seed: int = 0,
    edges_per_node: int = 2,
) -> GraphDatabase:
    """A time-layered graph: one copy of a base node set per tick.

    Every base entity ``u`` appears once per tick as ``t{k}_u``; arcs within
    a tick carry the first two alphabet symbols (events at that time), and
    every entity advances to its next-tick copy via the *last* symbol (time
    passing).  Long paths therefore interleave event symbols with forced
    tick advances — the temporal-join shape that layer-free random graphs
    cannot express.  Deterministic in ``seed``; string node names.
    """
    if ticks < 2:
        raise ValueError("temporal_layered_graph needs at least 2 ticks")
    if alphabet is None:
        alphabet = Alphabet("abc")
    symbols = list(alphabet)
    if len(symbols) < 2:
        raise ValueError("temporal_layered_graph needs an alphabet of >= 2 symbols")
    event_symbols, tick_symbol = symbols[:-1], symbols[-1]
    width = max(2, num_nodes // ticks)
    rng = random.Random(seed)
    db = GraphDatabase(alphabet)
    layers = [
        [f"t{tick}_u{entity}" for entity in range(width)] for tick in range(ticks)
    ]
    for layer in layers:
        for node in layer:
            db.add_node(node)
    for tick in range(ticks):
        for position, node in enumerate(layers[tick]):
            if tick + 1 < ticks:
                db.add_edge(node, tick_symbol, layers[tick + 1][position])
            for _ in range(edges_per_node):
                other = rng.randrange(width)
                if other == position and width > 1:
                    other = (other + 1) % width
                db.add_edge(
                    node,
                    event_symbols[rng.randrange(len(event_symbols))],
                    layers[tick][other],
                )
    return db


def dense_cluster_graph(
    num_nodes: int,
    cluster_size: int = 8,
    alphabet: Optional[Alphabet] = None,
    intra_density: float = 0.5,
    seed: int = 0,
) -> GraphDatabase:
    """Dense clusters joined by sparse bridges (the community-structure family).

    Nodes split into clusters of ``cluster_size``; inside a cluster each
    ordered pair carries an arc with probability ``intra_density`` labelled
    by one of the first alphabet symbols, so within-cluster reachability
    relations are near-quadratic.  Exactly one bridge arc (the last symbol)
    links each cluster to the next, so cross-cluster paths are forced
    through rare selective edges — the regime where planner edge-selection
    and semi-join pruning matter most.  Deterministic in ``seed``; string
    node names.
    """
    if num_nodes < 2:
        raise ValueError("dense_cluster_graph needs at least 2 nodes")
    if cluster_size < 2:
        raise ValueError("dense_cluster_graph needs clusters of at least 2 nodes")
    if alphabet is None:
        alphabet = Alphabet("abc")
    symbols = list(alphabet)
    if len(symbols) < 2:
        raise ValueError("dense_cluster_graph needs an alphabet of >= 2 symbols")
    intra_symbols, bridge_symbol = symbols[:-1], symbols[-1]
    rng = random.Random(seed)
    db = GraphDatabase(alphabet)
    clusters: List[List[Node]] = []
    for start in range(0, num_nodes, cluster_size):
        members: List[Node] = [
            f"k{len(clusters)}_n{offset}"
            for offset in range(min(cluster_size, num_nodes - start))
        ]
        for node in members:
            db.add_node(node)
        clusters.append(members)
    for members in clusters:
        for source in members:
            for target in members:
                if source != target and rng.random() < intra_density:
                    db.add_edge(
                        source,
                        intra_symbols[rng.randrange(len(intra_symbols))],
                        target,
                    )
    for position, members in enumerate(clusters):
        if len(clusters) > 1:
            nxt = clusters[(position + 1) % len(clusters)]
            db.add_edge(members[0], bridge_symbol, nxt[0])
    return db


def layered_graph(
    layers: int,
    width: int,
    alphabet: Alphabet,
    seed: int = 0,
    edges_per_node: int = 2,
) -> GraphDatabase:
    """A layered DAG-like database (long paths, no short cycles)."""
    rng = random.Random(seed)
    symbols = list(alphabet)
    db = GraphDatabase(alphabet)
    node_names = [[f"l{layer}_n{index}" for index in range(width)] for layer in range(layers)]
    for layer in node_names:
        for node in layer:
            db.add_node(node)
    for layer in range(layers - 1):
        for node in node_names[layer]:
            for _ in range(edges_per_node):
                db.add_edge(node, rng.choice(symbols), rng.choice(node_names[layer + 1]))
    return db
