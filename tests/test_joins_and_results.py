"""Tests for the morphism join helper and the result containers."""

import pytest

from repro.engine.joins import EdgeRelation, _select_edge, join_morphisms, semijoin_reduce
from repro.engine.results import EvaluationResult, Match


class TestEdgeRelation:
    def test_indexes(self):
        relation = EdgeRelation([(1, 2), (1, 3), (2, 3)])
        assert (1, 2) in relation
        assert (3, 1) not in relation
        assert relation.targets_of(1) == {2, 3}
        assert relation.sources_of(3) == {1, 2}
        assert len(relation) == 3

    def test_empty_relation(self):
        relation = EdgeRelation([])
        assert relation.targets_of(1) == set()
        assert len(relation) == 0

    def test_misses_share_one_immutable_empty_row(self):
        # Regression: every miss used to allocate a fresh ``set()`` inside
        # the innermost backtracking loop.
        relation = EdgeRelation([(1, 2)])
        assert relation.targets_of("absent") is relation.sources_of("absent")
        assert relation.targets_of("absent") is EdgeRelation([]).targets_of(0)

    def test_caller_mutation_cannot_corrupt_the_index(self):
        # Regression: hits used to hand out the mutable index sets — a
        # caller calling ``.add``/``.discard`` on the result silently
        # corrupted the relation for every later lookup.
        relation = EdgeRelation([(1, 2), (1, 3), (2, 3)])
        row = relation.targets_of(1)
        with pytest.raises(AttributeError):
            row.add(99)
        with pytest.raises(AttributeError):
            relation.sources_of(3).discard(1)
        with pytest.raises(AttributeError):
            relation.targets_of("absent").add(99)
        # Mutating a caller-made copy is fine and leaves the index intact.
        copy = set(row)
        copy.add(99)
        assert relation.targets_of(1) == {2, 3}
        assert relation.sources_of(3) == {1, 2}


class TestJoinMorphisms:
    def test_two_edge_chain(self):
        first = EdgeRelation([(1, 2), (2, 3)])
        second = EdgeRelation([(2, 9), (3, 9)])
        morphisms = list(
            join_morphisms([("x", "y"), ("y", "z")], [first, second], ["x", "y", "z"], [1, 2, 3, 9])
        )
        assignments = {(m["x"], m["y"], m["z"]) for m in morphisms}
        assert assignments == {(1, 2, 9), (2, 3, 9)}

    def test_self_loop_edge(self):
        relation = EdgeRelation([(1, 1), (1, 2)])
        morphisms = list(join_morphisms([("x", "x")], [relation], ["x"], [1, 2]))
        assert [m["x"] for m in morphisms] == [1]

    def test_self_loop_edge_with_bound_endpoint(self):
        # The self-loop filter must also apply when the variable is already
        # assigned by a neighbouring edge before the loop edge is expanded.
        loop = EdgeRelation([(1, 1), (2, 2), (2, 3)])
        chain = EdgeRelation([(1, 2), (2, 3)])
        morphisms = list(
            join_morphisms(
                [("x", "y"), ("y", "y")], [chain, loop], ["x", "y"], [1, 2, 3]
            )
        )
        assert {(m["x"], m["y"]) for m in morphisms} == {(1, 2)}

    def test_self_loop_edge_with_fixed_assignment(self):
        loop = EdgeRelation([(1, 1), (2, 3)])
        morphisms = list(
            join_morphisms([("x", "x")], [loop], ["x"], [1, 2, 3], fixed={"x": 1})
        )
        assert [m["x"] for m in morphisms] == [1]
        assert not list(
            join_morphisms([("x", "x")], [loop], ["x"], [1, 2, 3], fixed={"x": 2})
        )

    def test_fixed_assignment(self):
        relation = EdgeRelation([(1, 2), (2, 3)])
        morphisms = list(
            join_morphisms([("x", "y")], [relation], ["x", "y"], [1, 2, 3], fixed={"x": 2})
        )
        assert [(m["x"], m["y"]) for m in morphisms] == [(2, 3)]

    def test_fixed_assignment_with_unknown_node_rejected(self):
        relation = EdgeRelation([(1, 2)])
        with pytest.raises(ValueError):
            list(join_morphisms([("x", "y")], [relation], ["x", "y"], [1, 2], fixed={"zz": 1}))

    def test_check_callback_filters(self):
        relation = EdgeRelation([(1, 2), (2, 3)])
        morphisms = list(
            join_morphisms(
                [("x", "y")],
                [relation],
                ["x", "y"],
                [1, 2, 3],
                check=lambda assignment: assignment["y"] == 3,
            )
        )
        assert [(m["x"], m["y"]) for m in morphisms] == [(2, 3)]

    def test_isolated_pattern_nodes_enumerate_database(self):
        relation = EdgeRelation([(1, 2)])
        morphisms = list(join_morphisms([("x", "y")], [relation], ["x", "y", "free"], [1, 2]))
        assert {m["free"] for m in morphisms} == {1, 2}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            list(join_morphisms([("x", "y")], [], ["x", "y"], [1]))

    def test_pruning_does_not_change_the_result(self):
        first = EdgeRelation([(1, 2), (2, 3), (7, 8)])
        second = EdgeRelation([(2, 9), (3, 9), (5, 6)])
        endpoints = [("x", "y"), ("y", "z")]
        pruned = {
            (m["x"], m["y"], m["z"])
            for m in join_morphisms(endpoints, [first, second], ["x", "y", "z"], [1, 2, 3, 9])
        }
        unpruned = {
            (m["x"], m["y"], m["z"])
            for m in join_morphisms(
                endpoints, [first, second], ["x", "y", "z"], [1, 2, 3, 9], prune=False
            )
        }
        assert pruned == unpruned == {(1, 2, 9), (2, 3, 9)}


class TestSelectEdge:
    def test_prefers_more_bound_endpoints(self):
        endpoints = [("x", "y"), ("y", "z")]
        relations = [EdgeRelation([(1, 2)] * 1), EdgeRelation([(2, 9), (3, 9)])]
        # With ``y`` assigned, both edges have one bound endpoint; with ``x``
        # assigned, only the first edge does and it must win.
        assert _select_edge([0, 1], endpoints, relations, {"x": 1}) == 0
        assert _select_edge([0, 1], endpoints, relations, {"z": 9}) == 1

    def test_ties_broken_by_smaller_relation(self):
        endpoints = [("x", "y"), ("u", "v")]
        small = EdgeRelation([(1, 2)])
        large = EdgeRelation([(1, 2), (2, 3), (3, 4)])
        assert _select_edge([0, 1], endpoints, [large, small], {}) == 1
        assert _select_edge([0, 1], endpoints, [small, large], {}) == 0

    def test_respects_remaining_subset(self):
        endpoints = [("x", "y"), ("u", "v")]
        small = EdgeRelation([(1, 2)])
        large = EdgeRelation([(1, 2), (2, 3)])
        assert _select_edge([0], endpoints, [large, small], {}) == 0

    def test_half_bound_edges_weigh_domain_fanout_not_relation_size(self):
        # Regression (thm2 @ 160 nodes): with only relation sizes in the
        # key, semi-join pruning could steer the search into a large
        # branching region.  The cost model must count the *actual*
        # candidate domain of the bound endpoint: the big relation with
        # fan-out 1 from x=1 beats the small relation with fan-out 3.
        endpoints = [("x", "y"), ("x", "z")]
        big_relation_small_fanout = EdgeRelation([(1, 2)] + [(9, k) for k in range(10)])
        small_relation_big_fanout = EdgeRelation([(1, 2), (1, 3), (1, 4)])
        assert (
            _select_edge(
                [0, 1],
                endpoints,
                [big_relation_small_fanout, small_relation_big_fanout],
                {"x": 1},
            )
            == 0
        )
        # Reversed positions: the decision follows the fan-out, not the index.
        assert (
            _select_edge(
                [0, 1],
                endpoints,
                [small_relation_big_fanout, big_relation_small_fanout],
                {"x": 1},
            )
            == 1
        )

    def test_fully_bound_edges_always_win(self):
        endpoints = [("x", "y"), ("u", "v")]
        bound_check = EdgeRelation([(1, 2), (2, 3), (3, 4), (4, 5)])
        tiny = EdgeRelation([(7, 8)])
        assert (
            _select_edge([0, 1], endpoints, [bound_check, tiny], {"x": 1, "y": 2}) == 0
        )

    def test_backward_fanout_counts_for_target_bound_edges(self):
        endpoints = [("x", "y"), ("z", "y")]
        many_sources = EdgeRelation([(k, 5) for k in range(6)])
        few_sources = EdgeRelation([(1, 5), (2, 6)])
        assert _select_edge([0, 1], endpoints, [many_sources, few_sources], {"y": 5}) == 1


class TestSemijoinReduce:
    def test_dead_pairs_are_pruned(self):
        first = EdgeRelation([(1, 2), (2, 3), (7, 8)])
        second = EdgeRelation([(2, 9), (3, 9), (5, 6)])
        pruned = semijoin_reduce([("x", "y"), ("y", "z")], [first, second])
        assert pruned[0].pairs == {(1, 2), (2, 3)}
        assert pruned[1].pairs == {(2, 9), (3, 9)}

    def test_unchanged_relations_keep_identity(self):
        first = EdgeRelation([(1, 2)])
        second = EdgeRelation([(2, 3)])
        pruned = semijoin_reduce([("x", "y"), ("y", "z")], [first, second])
        assert pruned[0] is first
        assert pruned[1] is second

    def test_self_loops_restricted_to_diagonal(self):
        loop = EdgeRelation([(1, 1), (1, 2), (3, 3)])
        pruned = semijoin_reduce([("x", "x")], [loop])
        assert pruned[0].pairs == {(1, 1), (3, 3)}

    def test_fixed_assignment_seeds_the_domains(self):
        relation = EdgeRelation([(1, 2), (2, 3)])
        pruned = semijoin_reduce([("x", "y")], [relation], fixed={"x": 2})
        assert pruned[0].pairs == {(2, 3)}

    def test_empty_domain_propagates(self):
        first = EdgeRelation([(1, 2)])
        second = EdgeRelation([(3, 4)])
        pruned = semijoin_reduce([("x", "y"), ("y", "z")], [first, second])
        assert pruned[0].pairs == set()
        assert pruned[1].pairs == set()


class TestResults:
    def test_match_accessors(self):
        match = Match.from_dict({"x": 1, "y": 2}, words=["ab"])
        assert match.node("x") == 1
        assert match.as_dict() == {"x": 1, "y": 2}
        assert match.words == ("ab",)
        with pytest.raises(KeyError):
            match.node("zz")

    def test_result_boolean_and_merge(self):
        first = EvaluationResult(tuples={(1,)})
        second = EvaluationResult(tuples={(2,)}, exhaustive=False)
        merged = first.merge(second)
        assert merged.boolean
        assert merged.tuples == {(1,), (2,)}
        assert merged.exhaustive is False

    def test_empty_result_is_false(self):
        assert not EvaluationResult().boolean
