"""Tests for the xregex AST (Definition 3)."""

import pytest

from repro.core.errors import XregexSyntaxError
from repro.regex import syntax as rx


class TestConstruction:
    def test_symbol_requires_single_character(self):
        with pytest.raises(XregexSyntaxError):
            rx.Symbol("ab")

    def test_literal_builds_concatenation(self):
        expr = rx.literal("abc")
        assert isinstance(expr, rx.Concat)
        assert expr.to_string() == "abc"

    def test_literal_empty_word_is_epsilon(self):
        assert rx.literal("") == rx.EPSILON

    def test_concat_flattens_and_drops_epsilon(self):
        expr = rx.concat(rx.Symbol("a"), rx.EPSILON, rx.concat(rx.Symbol("b"), rx.Symbol("c")))
        assert expr.to_string() == "abc"

    def test_concat_with_empty_set_is_empty(self):
        assert rx.concat(rx.Symbol("a"), rx.EMPTY) == rx.EMPTY

    def test_alternation_flattens_and_drops_empty(self):
        expr = rx.alternation(rx.Symbol("a"), rx.EMPTY, rx.alternation(rx.Symbol("b"), rx.Symbol("c")))
        assert isinstance(expr, rx.Alternation)
        assert len(expr.options) == 3

    def test_alternation_of_nothing_is_empty(self):
        assert rx.alternation() == rx.EMPTY
        assert rx.alternation(rx.EMPTY) == rx.EMPTY

    def test_star_of_epsilon_is_epsilon(self):
        assert rx.star(rx.EPSILON) == rx.EPSILON
        assert rx.plus(rx.EMPTY) == rx.EMPTY

    def test_invalid_variable_names_rejected(self):
        with pytest.raises(XregexSyntaxError):
            rx.VarRef("1abc")
        with pytest.raises(XregexSyntaxError):
            rx.VarDef("", rx.Symbol("a"))


class TestVariables:
    def test_var_of_definition_includes_the_variable(self):
        expr = rx.VarDef("x", rx.alternation(rx.Symbol("a"), rx.Symbol("b")))
        assert expr.variables() == {"x"}
        assert expr.defined_variables() == {"x"}
        assert expr.referenced_variables() == set()

    def test_var_of_reference(self):
        expr = rx.concat(rx.VarRef("x"), rx.Symbol("a"))
        assert expr.variables() == {"x"}
        assert expr.referenced_variables() == {"x"}
        assert expr.defined_variables() == set()

    def test_definition_forbids_its_own_variable_in_body(self):
        # x{a &x} is not an xregex by Definition 3.
        bad = rx.VarDef("x", rx.concat(rx.Symbol("a"), rx.VarRef("x")))
        with pytest.raises(XregexSyntaxError):
            bad.validate()

    def test_nested_definition_of_same_variable_rejected(self):
        bad = rx.VarDef("x", rx.concat(rx.VarDef("x", rx.Symbol("b")), rx.Symbol("a")))
        with pytest.raises(XregexSyntaxError):
            bad.validate()

    def test_valid_nested_definitions(self):
        expr = rx.VarDef("x", rx.concat(rx.VarDef("y", rx.Symbol("a")), rx.VarRef("y")))
        expr.validate()
        assert expr.variables() == {"x", "y"}

    def test_definitions_and_references_lists(self):
        expr = rx.concat(rx.VarDef("x", rx.Symbol("a")), rx.VarRef("x"), rx.VarRef("y"))
        assert [d.name for d in expr.definitions()] == ["x"]
        assert sorted(r.name for r in expr.references()) == ["x", "y"]
        assert len(expr.definitions_of("x")) == 1

    def test_is_classical(self):
        assert rx.literal("ab").is_classical()
        assert not rx.concat(rx.Symbol("a"), rx.VarRef("x")).is_classical()

    def test_terminal_symbols(self):
        expr = rx.concat(rx.Symbol("a"), rx.SymbolClass(frozenset("bc")), rx.VarRef("x"))
        assert expr.terminal_symbols() == {"a", "b", "c"}


class TestTransformations:
    def test_substitute_references(self):
        expr = rx.concat(rx.VarRef("x"), rx.Symbol("a"), rx.VarRef("x"))
        replaced = expr.substitute_references({"x": rx.literal("bb")})
        assert replaced.to_string() == "bbabb"

    def test_substitute_definitions(self):
        expr = rx.concat(rx.VarDef("x", rx.Symbol("a")), rx.VarRef("x"))
        replaced = expr.substitute_definitions({"x": rx.Symbol("c")})
        assert replaced.to_string() == "c&x"

    def test_rename_variables(self):
        expr = rx.concat(rx.VarDef("x", rx.Symbol("a")), rx.VarRef("x"))
        renamed = expr.rename_variables({"x": "y"})
        assert renamed.to_string() == "y{a}&y"

    def test_size_counts_nodes(self):
        expr = rx.concat(rx.Symbol("a"), rx.Star(rx.Symbol("b")))
        assert expr.size() == 4  # Concat, a, Star, b

    def test_transform_bottom_up_identity(self):
        expr = rx.concat(rx.VarDef("x", rx.alternation(rx.Symbol("a"), rx.Symbol("b"))), rx.VarRef("x"))
        assert expr.transform_bottom_up(lambda node: node) == expr


class TestPrinting:
    def test_definition_and_reference_rendering(self):
        expr = rx.concat(rx.VarDef("x", rx.alternation(rx.Symbol("a"), rx.Symbol("b"))), rx.Plus(rx.alternation(rx.VarRef("x"), rx.Symbol("c"))))
        assert expr.to_string() == "x{a|b}(&x|c)+"

    def test_escaping_of_metacharacters(self):
        expr = rx.Symbol("#")
        assert expr.to_string() == "#"
        assert rx.Symbol("+").to_string() == "\\+"

    def test_symbol_class_rendering(self):
        expr = rx.SymbolClass(frozenset("ab"), negated=True)
        assert expr.to_string() == "[^ab]"

    def test_epsilon_and_empty(self):
        assert rx.EPSILON.to_string() == "()"
        assert rx.EMPTY.to_string() == "∅"
