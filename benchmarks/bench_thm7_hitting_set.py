"""E-T7 — Theorem 7 / Figure 4: NP-hardness of CXRPQ^<=1 via Hitting Set.

Every instance is solved twice: through the reduction (single-edge CXRPQ^<=1
query on the Figure 4 database) and by the brute-force Hitting-Set solver;
the answers must agree.  The benchmark series over the universe size shows
how quickly the combined complexity grows even for single-edge queries —
the behaviour that separates CXRPQ^<=k from CRPQ (which is polynomial on
acyclic patterns).
"""

import pytest

from repro.engine.engine import evaluate
from repro.reductions.hitting_set import brute_force_hitting_set

from benchmarks.common import cached_hitting_set, print_table

INSTANCES = [
    (2, 2, 1),
    (3, 2, 1),
    (4, 2, 1),
]


@pytest.mark.parametrize("universe,sets,budget", INSTANCES)
def test_hitting_set_reduction(benchmark, universe, sets, budget):
    db, query, instance = cached_hitting_set(universe, sets, budget, seed=5)
    expected = brute_force_hitting_set(instance) is not None

    def run():
        return evaluate(query, db).boolean

    observed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert observed == expected


@pytest.mark.parametrize("universe,sets,budget", INSTANCES)
def test_brute_force_baseline(benchmark, universe, sets, budget):
    _db, _query, instance = cached_hitting_set(universe, sets, budget, seed=5)
    benchmark(lambda: brute_force_hitting_set(instance))


def test_hitting_set_table(benchmark):
    def build_rows():
        rows = []
        for universe, sets, budget in INSTANCES:
            db, query, instance = cached_hitting_set(universe, sets, budget, seed=5)
            rows.append(
                [
                    universe,
                    sets,
                    budget,
                    db.size(),
                    query.size(),
                    brute_force_hitting_set(instance) is not None,
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        "Theorem 7 — Hitting-Set instances encoded as CXRPQ^<=1 evaluation",
        ["|U|", "#sets", "k", "|D|", "|q|", "hitting set exists"],
        rows,
    )
