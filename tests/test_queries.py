"""Tests for graph patterns and the query classes (Sections 2.3, 4 and 7)."""

import pytest

from repro.core.errors import EvaluationError, XregexSyntaxError
from repro.automata.relations import EqualityRelation
from repro.queries import CRPQ, CXRPQ, ECRPQ, Fragment, GraphPattern, RPQ, UnionQuery
from repro.queries.ecrpq import RelationConstraint
from repro.paperlib import figures


class TestGraphPattern:
    def test_nodes_and_edges(self):
        pattern = GraphPattern([("x", "a", "y"), ("y", "b", "z")])
        assert pattern.nodes == ["x", "y", "z"]
        assert pattern.num_edges() == 2
        assert not pattern.is_single_edge()

    def test_with_labels(self):
        pattern = GraphPattern([("x", "a", "y")])
        relabelled = pattern.with_labels(["b"])
        assert relabelled.edges[0].label == "b"
        with pytest.raises(EvaluationError):
            pattern.with_labels(["a", "b"])

    def test_acyclicity_of_underlying_graph(self):
        tree = GraphPattern([("x", "a", "y"), ("x", "a", "z")])
        assert tree.is_acyclic_undirected()
        cycle = GraphPattern([("x", "a", "y"), ("y", "a", "z"), ("z", "a", "x")])
        assert not cycle.is_acyclic_undirected()

    def test_multi_edges_make_cycles(self):
        pattern = GraphPattern([("x", "a", "y"), ("x", "b", "y")])
        assert not pattern.is_acyclic_undirected()


class TestCRPQ:
    def test_labels_are_parsed(self):
        query = CRPQ([("x", "a+b", "y")], ("x", "y"))
        assert query.regexes()[0].to_string() == "a+b"

    def test_rejects_xregex_labels(self):
        with pytest.raises(XregexSyntaxError):
            CRPQ([("x", "w{a}", "y")])

    def test_output_variables_must_occur(self):
        with pytest.raises(EvaluationError):
            CRPQ([("x", "a", "y")], ("zz",))

    def test_boolean_queries(self):
        assert CRPQ([("x", "a", "y")]).is_boolean
        assert not CRPQ([("x", "a", "y")], ("x",)).is_boolean

    def test_rpq_is_single_edge(self):
        query = RPQ("a*b")
        assert query.is_single_edge()
        assert query.output_variables == ("x", "y")

    def test_size_measure(self):
        small = CRPQ([("x", "a", "y")])
        large = CRPQ([("x", "a(b|c)*d", "y"), ("y", "a", "z")])
        assert large.size() > small.size()


class TestECRPQ:
    def test_equality_constraint_validation(self):
        query = ECRPQ([("x", "a*", "y"), ("x", "a*", "z")])
        query.add_equality([0, 1])
        assert query.is_equality_only()

    def test_edge_can_join_only_one_constraint(self):
        query = ECRPQ([("x", "a*", "y"), ("x", "a*", "z")])
        query.add_equality([0, 1])
        with pytest.raises(EvaluationError):
            query.add_equality([0, 1])

    def test_constraint_arity_must_match(self):
        with pytest.raises(EvaluationError):
            RelationConstraint(EqualityRelation(2), (0,))

    def test_out_of_range_edge_index(self):
        with pytest.raises(EvaluationError):
            ECRPQ([("x", "a", "y")], constraints=[RelationConstraint(EqualityRelation(2), (0, 5))])

    def test_paper_queries_are_equality_classified(self):
        assert figures.figure6_q_anan().is_equality_only()
        assert not figures.figure6_q_anbn().is_equality_only()


class TestCXRPQ:
    def test_conjunctive_xregex_is_validated(self):
        with pytest.raises(Exception):
            CXRPQ([("x", "w{a}", "y"), ("y", "w{b}", "z")])

    def test_fragment_classification(self):
        assert CXRPQ([("x", "a*", "y")]).fragment() is Fragment.CRPQ
        assert CXRPQ([("x", "w{a|b}c", "y"), ("y", "&w", "z")]).fragment() is Fragment.SIMPLE
        assert CXRPQ([("x", "w{a|b}", "y"), ("y", "&w|c", "z")]).fragment() is Fragment.VSF_FLAT
        non_flat = CXRPQ([("x", "w{a&v}", "y"), ("y", "u{&w b}", "z"), ("z", "v{b*}", "t")])
        assert non_flat.fragment() is Fragment.VSF
        assert CXRPQ([("x", "w{a|b}", "y"), ("y", "(&w)+", "z")]).fragment() is Fragment.GENERAL

    def test_figure2_fragments_match_the_paper(self):
        assert figures.figure2_g4().is_vstar_free()
        assert not figures.figure2_g4().is_vstar_free_flat()
        assert figures.figure2_g2().is_vstar_free_flat()
        assert not figures.figure2_g3().is_vstar_free()
        assert figures.figure2_g1().is_vstar_free() is False  # (&x|c)+ stars a reference

    def test_image_bound_variants(self):
        query = CXRPQ([("x", "w{a+}", "y"), ("y", "&w", "z")])
        bounded = query.with_image_bound(3)
        assert bounded.image_bound == 3
        assert bounded.resolve_image_bound(100) == 3
        log_bounded = query.with_image_bound("log")
        assert log_bounded.resolve_image_bound(256) == 8

    def test_variables_and_alphabet(self):
        query = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w c", "z")])
        assert query.variables() == {"w"}
        assert query.alphabet().symbols == frozenset("abc")

    def test_with_conjunctive_xregex_replaces_labels(self):
        from repro.regex.conjunctive import ConjunctiveXregex

        query = CXRPQ([("x", "a", "y"), ("y", "b", "z")], ("x",))
        replaced = query.with_conjunctive_xregex(ConjunctiveXregex.parse("c", "d"))
        assert [edge.label.to_string() for edge in replaced.pattern.edges] == ["c", "d"]
        with pytest.raises(ValueError):
            query.with_conjunctive_xregex(ConjunctiveXregex.parse("c"))


class TestUnionQuery:
    def test_union_requires_same_arity(self):
        first = CRPQ([("x", "a", "y")], ("x",))
        second = CRPQ([("x", "b", "y")], ("x", "y"))
        with pytest.raises(EvaluationError):
            UnionQuery([first, second])

    def test_union_properties(self):
        first = CRPQ([("x", "a", "y")], ("x",))
        second = CRPQ([("x", "b", "y")], ("y",))
        union = UnionQuery([first, second])
        assert len(union) == 2
        assert union.output_arity == 1
        assert not union.is_boolean
        assert union.size() >= first.size() + second.size()

    def test_union_needs_members(self):
        with pytest.raises(EvaluationError):
            UnionQuery([])
