"""Tests for graph-database loading and saving."""

import pytest

from repro.core.alphabet import Alphabet
from repro.graphdb.database import GraphDatabase
from repro.graphdb.io import (
    GraphFormatError,
    dumps_edge_list,
    dumps_json,
    load_database,
    loads_edge_list,
    loads_json,
    save_edge_list,
    save_json,
)


def sample_db() -> GraphDatabase:
    db = GraphDatabase.from_edges(
        [("u", "a", "v"), ("v", "b", "w"), ("u", "a", "w")]
    )
    db.add_node("isolated")
    return db


class TestEdgeListFormat:
    def test_round_trip(self):
        db = sample_db()
        text = dumps_edge_list(db)
        loaded = loads_edge_list(text)
        assert loaded.num_nodes() == db.num_nodes()
        assert loaded.num_edges() == db.num_edges()
        assert loaded.has_edge("u", "a", "v")
        assert "isolated" in loaded

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nu a v\n"
        loaded = loads_edge_list(text)
        assert loaded.num_edges() == 1

    def test_invalid_line_raises(self):
        with pytest.raises(GraphFormatError):
            loads_edge_list("u a\n")

    def test_multi_symbol_label_raises(self):
        with pytest.raises(GraphFormatError):
            loads_edge_list("u ab v\n")

    def test_declared_alphabet(self):
        loaded = loads_edge_list("u a v\n", Alphabet("ab"))
        assert loaded.alphabet().symbols == frozenset("ab")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "graph.edges"
        save_edge_list(sample_db(), path)
        loaded = load_database(path)
        assert loaded.num_edges() == 3


class TestJsonFormat:
    def test_round_trip(self):
        db = sample_db()
        loaded = loads_json(dumps_json(db))
        assert loaded.num_nodes() == db.num_nodes()
        assert loaded.num_edges() == db.num_edges()

    def test_invalid_json(self):
        with pytest.raises(GraphFormatError):
            loads_json("{not json")

    def test_missing_edges_key(self):
        with pytest.raises(GraphFormatError):
            loads_json('{"nodes": []}')

    def test_invalid_edge_entry(self):
        with pytest.raises(GraphFormatError):
            loads_json('{"edges": [["u", "a"]]}')

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "graph.json"
        save_json(sample_db(), path)
        loaded = load_database(path)
        assert loaded.num_edges() == 3
        assert loaded.has_edge("u", "a", "v")
