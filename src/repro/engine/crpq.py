"""Evaluation of CRPQs (Lemma 1).

For each pattern edge, the classical regular expression is compiled to an
NFA and the set of database node pairs connected by a matching path is
computed with the product construction; a backtracking join then assembles
matching morphisms.  This is the standard algorithm giving NP combined
complexity and NL data complexity, and it is the workhorse that the
``CXRPQ^<=k`` algorithm of Theorem 6 reduces to.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.alphabet import Alphabet
from repro.automata.nfa import NFA
from repro.engine.joins import EdgeRelation, join_morphisms
from repro.engine.results import DEFAULT_MATCH_LIMIT, EvaluationResult, Match
from repro.graphdb.cache import reachability_index
from repro.graphdb.database import GraphDatabase
from repro.graphdb.paths import find_path_word
from repro.queries.crpq import CRPQ

Node = Hashable


def edge_relations(
    query: CRPQ,
    db: GraphDatabase,
    alphabet: Optional[Alphabet] = None,
) -> Tuple[List[EdgeRelation], List[NFA]]:
    """Per-edge reachability relations and the compiled edge NFAs.

    Relations come from the shared per-database reachability cache, so
    repeated edge regexes (within one query or across queries on the same
    database, e.g. the Theorem 6 instantiation loop) are computed once.
    With the CSR kernel active they are lazy: the join only materialises
    the rows it actually branches over, choosing the forward or backward
    product search per edge from which endpoint is bound — which is what
    makes :func:`crpq_check` (both output endpoints fixed) run in a few
    per-source rows instead of full pair sets.
    """
    alphabet = alphabet or db.alphabet()
    index = reachability_index(db)
    relations: List[EdgeRelation] = []
    nfas: List[NFA] = []
    for edge in query.pattern.edges:
        nfa = NFA.from_regex(edge.label, alphabet)
        nfas.append(nfa)
        relations.append(index.relation(nfa))
    return relations, nfas


def morphisms(
    query: CRPQ,
    db: GraphDatabase,
    alphabet: Optional[Alphabet] = None,
    fixed: Optional[Dict[str, Node]] = None,
) -> Iterator[Dict[str, Node]]:
    """Enumerate every matching morphism of ``query`` into ``db``."""
    relations, _nfas = edge_relations(query, db, alphabet)
    endpoints = [(edge.source, edge.target) for edge in query.pattern.edges]
    yield from join_morphisms(
        endpoints,
        relations,
        query.pattern.nodes,
        sorted(db.nodes, key=repr),
        fixed=fixed,
    )


def evaluate_crpq(
    query: CRPQ,
    db: GraphDatabase,
    alphabet: Optional[Alphabet] = None,
    *,
    boolean_short_circuit: bool = True,
    collect_witnesses: bool = False,
    match_limit: int = DEFAULT_MATCH_LIMIT,
    fixed: Optional[Dict[str, Node]] = None,
) -> EvaluationResult:
    """Evaluate a CRPQ, returning ``q(D)`` (and optionally witness morphisms)."""
    alphabet = alphabet or db.alphabet()
    relations, nfas = edge_relations(query, db, alphabet)
    endpoints = [(edge.source, edge.target) for edge in query.pattern.edges]
    result = EvaluationResult()
    for morphism in join_morphisms(
        endpoints,
        relations,
        query.pattern.nodes,
        sorted(db.nodes, key=repr),
        fixed=fixed,
    ):
        output = tuple(morphism[variable] for variable in query.output_variables)
        result.tuples.add(output)
        if collect_witnesses and len(result.matches) < match_limit:
            words = [
                find_path_word(db, nfa, morphism[source], morphism[target]) or ""
                for (source, target), nfa in zip(endpoints, nfas)
            ]
            result.matches.append(Match.from_dict(morphism, words))
        if query.is_boolean and boolean_short_circuit:
            return result
    return result


def crpq_holds(query: CRPQ, db: GraphDatabase, alphabet: Optional[Alphabet] = None) -> bool:
    """Boolean evaluation ``D |= q`` for CRPQs."""
    return evaluate_crpq(query, db, alphabet).boolean


def crpq_check(
    query: CRPQ,
    db: GraphDatabase,
    output_tuple: Sequence[Node],
    alphabet: Optional[Alphabet] = None,
) -> bool:
    """The Check problem: decide ``t ∈ q(D)`` for a given output tuple ``t``."""
    if len(output_tuple) != len(query.output_variables):
        raise ValueError("output tuple arity does not match the query")
    fixed = dict(zip(query.output_variables, output_tuple))
    result = evaluate_crpq(query, db, alphabet, fixed=fixed, boolean_short_circuit=False)
    return tuple(output_tuple) in result.tuples
