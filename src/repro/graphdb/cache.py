"""Shared reachability/product cache for the evaluation hot path.

Every evaluation algorithm of the reproduction (the Lemma 1 CRPQ join, the
Lemma 3 simple engine, the Theorem 2 VSF engine, the Theorem 6 bounded
engine and the ECRPQ engine) bottoms out in two primitives:

* ``reachable_pairs(db, nfa)`` — which node pairs are connected by a path
  labelled by a word of ``L(nfa)``, and
* ``db_nfa_between(db, source, targets)`` — the database viewed as an NFA
  with designated start/accepting states (Section 2.2).

The seed recomputed both from scratch per unit and per candidate morphism.
This module provides the shared, per-database cache layer:

``ReachabilityIndex``
    memoises reachability relations keyed by a canonical NFA fingerprint
    (:meth:`repro.automata.nfa.NFA.fingerprint`), so repeated unit automata —
    e.g. the identical universal ``VarRef`` NFAs created by the unit split —
    are computed once per database.

``DatabaseAutomatonView``
    builds the DB-as-NFA transition table **once** and hands out lightweight
    parameterised views (start/accepting only), replacing the per-morphism
    ``db_nfa_between`` rebuild inside the synchronisation checks.

Caches are invalidated automatically when the database mutates (tracked via
``GraphDatabase.version``).  :func:`caching_disabled` switches the layer off
for A/B benchmarking against the seed behaviour.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.automata.nfa import NFA
from repro.graphdb.database import GraphDatabase, Node
from repro.graphdb.paths import product_search, reachable_pairs

Fingerprint = Tuple


class DatabaseAutomatonView:
    """The database as an NFA, built once, with parameterisable endpoints.

    State ``0`` (the base NFA's start) is kept as a transitionless dead
    state; every database node gets its own state.  :meth:`between` returns
    an :class:`NFA` that *shares* the transition table and only carries its
    own start/accepting states — callers must treat it as read-only.
    """

    __slots__ = ("_base", "_state_of", "_dead")

    def __init__(self, db: GraphDatabase):
        base = NFA()
        self._dead = base.start
        state_of: Dict[Node, int] = {}
        for node in sorted(db.nodes, key=repr):
            state_of[node] = base.add_state()
        for edge in db.edges:
            base.add_transition(state_of[edge.source], edge.label, state_of[edge.target])
        self._base = base
        self._state_of = state_of

    def state_of(self, node: Node) -> Optional[int]:
        """The base-NFA state of ``node``, or ``None`` for absent nodes."""
        return self._state_of.get(node)

    def between(self, source: Node, targets: Iterable[Node]) -> NFA:
        """An NFA accepting the words labelling paths ``source -> targets``.

        Language-equivalent to :func:`repro.graphdb.paths.db_nfa_between`,
        but O(|targets|) instead of O(|D|): the transition table is shared
        with every other view of this database.
        """
        view = NFA.__new__(NFA)
        view._transitions = self._base._transitions
        view._fingerprint = None
        view.start = self._state_of.get(source, self._dead)
        view.accepting = {
            self._state_of[target] for target in targets if target in self._state_of
        }
        return view


class ReachabilityIndex:
    """Per-database memo of reachability relations, keyed by NFA fingerprint."""

    __slots__ = ("_db_ref", "_version", "_pairs", "_from", "_relations", "_view", "hits", "misses")

    def __init__(self, db: GraphDatabase):
        # Weak back-reference: the registry below maps db -> index weakly,
        # and a strong reference here would keep every database (and its
        # O(|V|^2) pair caches) alive for the process lifetime.
        self._db_ref = weakref.ref(db)
        self._version = db.version
        self._pairs: Dict[Fingerprint, Set[Tuple[Node, Node]]] = {}
        self._from: Dict[Tuple[Fingerprint, Node], Set[Node]] = {}
        self._relations: Dict[Fingerprint, object] = {}
        self._view: Optional[DatabaseAutomatonView] = None
        self.hits = 0
        self.misses = 0

    @property
    def db(self) -> GraphDatabase:
        db = self._db_ref()
        if db is None:
            raise ReferenceError("the database of this ReachabilityIndex has been collected")
        return db

    def _refresh(self) -> GraphDatabase:
        """Drop every cached value when the database has mutated."""
        db = self.db
        if db.version != self._version:
            self._pairs.clear()
            self._from.clear()
            self._relations.clear()
            self._view = None
            self._version = db.version
        return db

    # -- cached primitives ----------------------------------------------------

    def reachable_pairs(self, nfa: NFA) -> Set[Tuple[Node, Node]]:
        """All ``(u, v)`` pairs of :func:`repro.graphdb.paths.reachable_pairs`."""
        db = self._refresh()
        key = nfa.fingerprint()
        cached = self._pairs.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        pairs = reachable_pairs(db, nfa)
        self._pairs[key] = pairs
        return pairs

    def reachable_from(self, nfa: NFA, source: Node) -> Set[Node]:
        """Nodes reachable from ``source`` via a word of ``L(nfa)``."""
        db = self._refresh()
        fingerprint = nfa.fingerprint()
        key = (fingerprint, source)
        cached = self._from.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        full = self._pairs.get(fingerprint)
        if full is not None:
            # Derived from the already-cached all-pairs set; memoised per
            # source so repeated lookups skip the filter.
            self.hits += 1
            targets = {target for origin, target in full if origin == source}
        else:
            self.misses += 1
            reached = product_search(db, nfa, source)
            targets = {node for node, states in reached.items() if states & nfa.accepting}
        self._from[key] = targets
        return targets

    def relation(self, nfa: NFA):
        """The cached :class:`~repro.engine.joins.EdgeRelation` of ``nfa``.

        Deduplicates the indexed-relation objects as well as the raw pair
        sets, so identical unit automata share one relation instance.
        """
        # Local import: the engine layer imports graphdb.cache at module
        # scope, so importing joins lazily avoids a circular import.
        from repro.engine.joins import EdgeRelation

        self._refresh()
        key = nfa.fingerprint()
        cached = self._relations.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        relation = EdgeRelation(self.reachable_pairs(nfa))
        self._relations[key] = relation
        return relation

    def view(self) -> DatabaseAutomatonView:
        """The shared DB-as-NFA view (built once per database version)."""
        db = self._refresh()
        if self._view is None:
            self._view = DatabaseAutomatonView(db)
        return self._view


# ---------------------------------------------------------------------------
# Per-database registry
# ---------------------------------------------------------------------------

_INDEXES: "weakref.WeakKeyDictionary[GraphDatabase, ReachabilityIndex]" = (
    weakref.WeakKeyDictionary()
)
_CACHING_ENABLED = True


def caching_enabled() -> bool:
    """Whether the shared cache layer is active."""
    return _CACHING_ENABLED


def reachability_index(db: GraphDatabase) -> ReachabilityIndex:
    """The shared :class:`ReachabilityIndex` of ``db``.

    Indexes are held weakly, so dropping the database also drops its cache.
    Under :func:`caching_disabled` a fresh, unshared index is returned on
    every call, which reproduces the seed's recompute-per-unit behaviour for
    A/B benchmarking.
    """
    if not _CACHING_ENABLED:
        return ReachabilityIndex(db)
    index = _INDEXES.get(db)
    if index is None:
        index = ReachabilityIndex(db)
        _INDEXES[db] = index
    return index


@contextmanager
def caching_disabled():
    """Context manager that bypasses the shared cache (for benchmarks)."""
    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = False
    try:
        yield
    finally:
        _CACHING_ENABLED = previous
