"""The hidden-communication scenario motivating query G3 of Figure 2.

Nodes are persons, arcs are text messages.  Two suspects encode a direct
conversation as a sequence of simple messages relayed through intermediaries,
and both also contact a mutual contact by repeating the coded sequence.  The
CXRPQ G3 of Figure 2 discovers such pairs — its string variables make the
inter-path dependency ("the same coded sequence") expressible, which no CRPQ
can do.

Run with::

    python examples/hidden_communication.py [num_persons]
"""

import sys

from repro import evaluate
from repro.graphdb.generators import message_network
from repro.paperlib import figures


def main() -> None:
    num_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    db, planted = message_network(
        num_persons,
        seed=13,
        plant_hidden_channel=True,
        hidden_code="ab",
        hidden_repetitions=2,
    )
    print(f"message network: {db.num_nodes()} persons, {db.num_edges()} messages")
    print(f"planted suspects: {planted['suspect_a']} and {planted['suspect_b']} "
          f"(mutual contact: {planted['contact']})")

    # G3 requires coded sequences of at least two messages; we evaluate it
    # under CXRPQ^<=2 semantics, i.e. codes of length exactly two.
    query = figures.figure2_g3().with_image_bound(2)
    result = evaluate(query, db, boolean_short_circuit=False)

    print(f"\nsuspicious pairs found: {len(result.tuples)}")
    for pair in sorted(result.tuples):
        marker = " <-- planted" if set(pair) == {planted["suspect_a"], planted["suspect_b"]} else ""
        print("   ", pair, marker)

    found = (planted["suspect_a"], planted["suspect_b"]) in result.tuples
    print("\nplanted channel recovered:", found)

    # Contrast: a network without a planted channel.
    clean_db, _ = message_network(num_persons, seed=13, plant_hidden_channel=False)
    clean = evaluate(query, clean_db, boolean_short_circuit=False)
    print(f"pairs reported on the clean network: {len(clean.tuples)}")


if __name__ == "__main__":
    main()
