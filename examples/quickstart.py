"""Quickstart: build a graph database, write a CXRPQ, evaluate it.

Run with::

    python examples/quickstart.py

The example mirrors the introduction of the paper: a conjunctive xregex path
query uses a string variable ``w`` to demand that two edges of the pattern
are matched by *related* paths — something no CRPQ can express.
"""

from repro import CRPQ, CXRPQ, GraphDatabase, evaluate


def build_database() -> GraphDatabase:
    """A small edge-labelled multigraph over the alphabet {a, b, c}."""
    return GraphDatabase.from_edges(
        [
            (1, "a", 2),
            (2, "a", 3),
            (1, "b", 3),
            (3, "c", 4),
            (3, "a", 5),
            (5, "a", 6),
            (4, "b", 6),
        ]
    )


def main() -> None:
    db = build_database()
    print(f"database: {db}")

    # A plain CRPQ: an a-path followed by a c-edge.
    crpq = CRPQ([("x", "a+", "y"), ("y", "c", "z")], output_variables=("x", "z"))
    print("\nCRPQ  (x) -a+-> (y) -c-> (z):")
    for row in sorted(evaluate(crpq, db).tuples):
        print("   ", row)

    # A CXRPQ: the first edge stores a one-symbol code in the string variable
    # w; the second edge must either replay exactly that code or use a c-edge.
    cxrpq = CXRPQ(
        [("x", "w{a|b}", "y"), ("y", "&w|c", "z")],
        output_variables=("x", "z"),
    )
    print("\nCXRPQ (x) -w{a|b}-> (y) -(&w|c)-> (z):")
    print("    fragment:", cxrpq.fragment().value)
    for row in sorted(evaluate(cxrpq, db).tuples):
        print("   ", row)

    # The same query under CXRPQ^<=k semantics (Section 6) — here k=1 does not
    # change anything because the variable image is a single symbol anyway.
    bounded = cxrpq.with_image_bound(1)
    assert evaluate(bounded, db).tuples == evaluate(cxrpq, db).tuples
    print("\nCXRPQ^<=1 semantics agree with the unrestricted semantics here.")

    # Witnesses: matching morphisms together with the matched path labels.
    result = evaluate(cxrpq, db, collect_witnesses=True, boolean_short_circuit=False)
    print("\nwitness morphisms (first three):")
    for match in result.matches[:3]:
        print("   ", dict(match.morphism), "words:", match.words)


if __name__ == "__main__":
    main()
