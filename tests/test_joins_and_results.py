"""Tests for the morphism join helper and the result containers."""

import pytest

from repro.engine.joins import EdgeRelation, join_morphisms
from repro.engine.results import EvaluationResult, Match


class TestEdgeRelation:
    def test_indexes(self):
        relation = EdgeRelation([(1, 2), (1, 3), (2, 3)])
        assert (1, 2) in relation
        assert (3, 1) not in relation
        assert relation.targets_of(1) == {2, 3}
        assert relation.sources_of(3) == {1, 2}
        assert len(relation) == 3

    def test_empty_relation(self):
        relation = EdgeRelation([])
        assert relation.targets_of(1) == set()
        assert len(relation) == 0


class TestJoinMorphisms:
    def test_two_edge_chain(self):
        first = EdgeRelation([(1, 2), (2, 3)])
        second = EdgeRelation([(2, 9), (3, 9)])
        morphisms = list(
            join_morphisms([("x", "y"), ("y", "z")], [first, second], ["x", "y", "z"], [1, 2, 3, 9])
        )
        assignments = {(m["x"], m["y"], m["z"]) for m in morphisms}
        assert assignments == {(1, 2, 9), (2, 3, 9)}

    def test_self_loop_edge(self):
        relation = EdgeRelation([(1, 1), (1, 2)])
        morphisms = list(join_morphisms([("x", "x")], [relation], ["x"], [1, 2]))
        assert [m["x"] for m in morphisms] == [1]

    def test_fixed_assignment(self):
        relation = EdgeRelation([(1, 2), (2, 3)])
        morphisms = list(
            join_morphisms([("x", "y")], [relation], ["x", "y"], [1, 2, 3], fixed={"x": 2})
        )
        assert [(m["x"], m["y"]) for m in morphisms] == [(2, 3)]

    def test_fixed_assignment_with_unknown_node_rejected(self):
        relation = EdgeRelation([(1, 2)])
        with pytest.raises(ValueError):
            list(join_morphisms([("x", "y")], [relation], ["x", "y"], [1, 2], fixed={"zz": 1}))

    def test_check_callback_filters(self):
        relation = EdgeRelation([(1, 2), (2, 3)])
        morphisms = list(
            join_morphisms(
                [("x", "y")],
                [relation],
                ["x", "y"],
                [1, 2, 3],
                check=lambda assignment: assignment["y"] == 3,
            )
        )
        assert [(m["x"], m["y"]) for m in morphisms] == [(2, 3)]

    def test_isolated_pattern_nodes_enumerate_database(self):
        relation = EdgeRelation([(1, 2)])
        morphisms = list(join_morphisms([("x", "y")], [relation], ["x", "y", "free"], [1, 2]))
        assert {m["free"] for m in morphisms} == {1, 2}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            list(join_morphisms([("x", "y")], [], ["x", "y"], [1]))


class TestResults:
    def test_match_accessors(self):
        match = Match.from_dict({"x": 1, "y": 2}, words=["ab"])
        assert match.node("x") == 1
        assert match.as_dict() == {"x": 1, "y": 2}
        assert match.words == ("ab",)
        with pytest.raises(KeyError):
            match.node("zz")

    def test_result_boolean_and_merge(self):
        first = EvaluationResult(tuples={(1,)})
        second = EvaluationResult(tuples={(2,)}, exhaustive=False)
        merged = first.merge(second)
        assert merged.boolean
        assert merged.tuples == {(1,), (2,)}
        assert merged.exhaustive is False

    def test_empty_result_is_false(self):
        assert not EvaluationResult().boolean
