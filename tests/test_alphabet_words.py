"""Tests for alphabets and word utilities (Section 2 preliminaries)."""

import pytest

from repro.core.alphabet import Alphabet
from repro.core.errors import AlphabetError
from repro.core.words import all_words_up_to, count_words_up_to, factors, is_word_over, occurrences


class TestAlphabet:
    def test_symbols_are_single_characters(self):
        alphabet = Alphabet("abc")
        assert alphabet.symbols == frozenset({"a", "b", "c"})
        assert len(alphabet) == 3

    def test_rejects_empty_alphabet(self):
        with pytest.raises(AlphabetError):
            Alphabet([])

    def test_rejects_multi_character_symbols(self):
        with pytest.raises(AlphabetError):
            Alphabet(["ab"])

    def test_contains_word(self):
        alphabet = Alphabet("ab")
        assert alphabet.contains_word("abba")
        assert not alphabet.contains_word("abc")
        assert alphabet.contains_word("")

    def test_require_word_raises_with_offending_symbols(self):
        alphabet = Alphabet("ab")
        with pytest.raises(AlphabetError) as excinfo:
            alphabet.require_word("abcd")
        assert "c" in str(excinfo.value)

    def test_from_word_infers_symbols(self):
        alphabet = Alphabet.from_word("abca", extra="#")
        assert alphabet.symbols == frozenset("abc#")

    def test_union_and_extend(self):
        assert Alphabet("ab").union(Alphabet("bc")).symbols == frozenset("abc")
        assert Alphabet("ab").extend("cd").symbols == frozenset("abcd")

    def test_iteration_is_sorted(self):
        assert list(Alphabet("cba")) == ["a", "b", "c"]

    def test_equality_and_hash(self):
        assert Alphabet("ab") == Alphabet("ba")
        assert hash(Alphabet("ab")) == hash(Alphabet("ba"))


class TestWords:
    def test_all_words_up_to_counts(self):
        words = list(all_words_up_to(Alphabet("ab"), 2))
        assert words[0] == ""
        assert set(words) == {"", "a", "b", "aa", "ab", "ba", "bb"}
        assert len(words) == count_words_up_to(2, 2)

    def test_all_words_up_to_zero(self):
        assert list(all_words_up_to(Alphabet("ab"), 0)) == [""]

    def test_all_words_negative_length(self):
        assert list(all_words_up_to(Alphabet("ab"), -1)) == []

    def test_count_words_unary_alphabet(self):
        assert count_words_up_to(1, 3) == 4

    def test_is_word_over(self):
        assert is_word_over("aba", Alphabet("ab"))
        assert not is_word_over("abc", Alphabet("ab"))

    def test_occurrences(self):
        assert occurrences("abab", "a") == 2
        assert occurrences("abab", "c") == 0

    def test_factors(self):
        result = factors("aba")
        assert "" in result and "aba" in result and "ba" in result
        assert len(result) == len(set(result))
