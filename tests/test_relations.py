"""Tests for regular relations (equality, equal-length, custom automata)."""

import pytest

from repro.core.alphabet import Alphabet
from repro.automata.relations import (
    EqualityRelation,
    EqualLengthRelation,
    PAD,
    PrefixRelation,
    encode_tuple,
    relation_from_tuples,
)

AB = Alphabet("ab")


class TestEncoding:
    def test_encode_pads_shorter_words(self):
        encoded = encode_tuple(["ab", "a"])
        assert encoded == (("a", "a"), ("b", PAD))

    def test_encode_empty_tuple_of_words(self):
        assert encode_tuple(["", ""]) == ()


class TestEqualityRelation:
    def test_equal_words_accepted(self):
        relation = EqualityRelation(3)
        assert relation.contains(["ab", "ab", "ab"], AB)
        assert relation.contains(["", "", ""], AB)

    def test_unequal_words_rejected(self):
        relation = EqualityRelation(2)
        assert not relation.contains(["ab", "ba"], AB)
        assert not relation.contains(["a", "aa"], AB)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            EqualityRelation(2).contains(["a"], AB)


class TestEqualLengthRelation:
    def test_equal_length_accepted(self):
        relation = EqualLengthRelation(2)
        assert relation.contains(["ab", "ba"], AB)
        assert relation.contains(["", ""], AB)

    def test_different_length_rejected(self):
        relation = EqualLengthRelation(2)
        assert not relation.contains(["a", "ab"], AB)


class TestPrefixRelation:
    def test_prefix_accepted(self):
        relation = PrefixRelation()
        assert relation.contains(["ab", "abb"], AB)
        assert relation.contains(["", "a"], AB)
        assert relation.contains(["ab", "ab"], AB)

    def test_non_prefix_rejected(self):
        relation = PrefixRelation()
        assert not relation.contains(["b", "ab"], AB)
        assert not relation.contains(["abc", "ab"], Alphabet("abc"))


class TestFiniteRelations:
    def test_relation_from_tuples(self):
        relation = relation_from_tuples([("a", "bb"), ("ab", "")])
        assert relation.contains(["a", "bb"], AB)
        assert relation.contains(["ab", ""], AB)
        assert not relation.contains(["a", "b"], AB)

    def test_relation_from_tuples_requires_consistent_arity(self):
        with pytest.raises(ValueError):
            relation_from_tuples([("a",), ("a", "b")])

    def test_relation_from_tuples_requires_nonempty(self):
        with pytest.raises(ValueError):
            relation_from_tuples([])

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            EqualityRelation(0)
