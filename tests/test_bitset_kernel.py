"""Property-style equivalence tests for the bitset BFS kernel.

The set-based kernel (the seed implementation, kept behind
``bitset_kernel_disabled``) serves as the oracle: on random databases from
:mod:`repro.graphdb.generators` and a pool of regular expressions, the
bitset forward kernel, the backward (reversed-product) kernel and the
single-source product search must produce identical answers.  A second
group of tests checks that LRU eviction in the cache layer never changes
query answers.
"""

import pytest

from repro.engine.vsf import evaluate_vsf
from repro.graphdb.cache import cache_capacity, invalidate_cache, reachability_index
from repro.graphdb.generators import random_graph
from repro.graphdb.paths import (
    bitset_kernel_disabled,
    bitset_kernel_enabled,
    product_search,
    reachable_from,
    reachable_pairs,
    reachable_to,
)
from repro.workloads import vsf_scaling_query

from helpers import ABC, REGEX_POOL, compiled, databases


class TestKernelEquivalence:
    def test_toggle_is_context_local(self):
        assert bitset_kernel_enabled()
        with bitset_kernel_disabled():
            assert not bitset_kernel_enabled()
            with bitset_kernel_disabled():
                assert not bitset_kernel_enabled()
            # Leaving the inner context must not re-enable the kernel.
            assert not bitset_kernel_enabled()
        assert bitset_kernel_enabled()

    @pytest.mark.parametrize("pattern", REGEX_POOL)
    def test_reachable_pairs_matches_set_kernel(self, pattern):
        nfa = compiled(pattern)
        for db in databases():
            fast = reachable_pairs(db, nfa)
            with bitset_kernel_disabled():
                oracle = reachable_pairs(db, nfa)
            assert fast == oracle

    @pytest.mark.parametrize("pattern", ["a*", "a+b", "(a|b)+", "(ab)+"])
    def test_product_search_matches_set_kernel(self, pattern):
        nfa = compiled(pattern)
        for db in databases():
            for source in list(sorted(db.nodes, key=repr))[:5] + ["ghost"]:
                fast = product_search(db, nfa, source)
                with bitset_kernel_disabled():
                    oracle = product_search(db, nfa, source)
                assert fast == oracle
                fast_from = reachable_from(db, nfa, source)
                with bitset_kernel_disabled():
                    oracle_from = reachable_from(db, nfa, source)
                assert fast_from == oracle_from

    @pytest.mark.parametrize("pattern", REGEX_POOL)
    def test_backward_search_matches_forward(self, pattern):
        nfa = compiled(pattern)
        for db in databases():
            full = reachable_pairs(db, nfa)
            nodes = sorted(db.nodes, key=repr)
            # A single target out of many sources selects the backward
            # kernel (|targets| * ratio <= |sources|).
            for target in nodes[:4]:
                restricted = reachable_pairs(db, nfa, targets=[target])
                assert restricted == {pair for pair in full if pair[1] == target}
                assert reachable_to(db, nfa, target) == {
                    source for source, t in full if t == target
                }
                with bitset_kernel_disabled():
                    oracle_to = reachable_to(db, nfa, target)
                assert oracle_to == {source for source, t in full if t == target}

    def test_backward_search_respects_explicit_sources(self):
        nfa = compiled("a+b")
        for db in databases():
            nodes = sorted(db.nodes, key=repr)
            sources = nodes[: len(nodes) // 2]
            target = nodes[-1]
            full = reachable_pairs(db, nfa)
            restricted = reachable_pairs(db, nfa, sources=sources, targets=[target])
            assert restricted == {
                (u, v) for u, v in full if u in set(sources) and v == target
            }

    def test_ghost_endpoints_are_ignored(self):
        db = random_graph(8, 20, ABC, seed=3)
        nfa = compiled("a*")
        assert reachable_pairs(db, nfa, sources=["ghost"]) == set()
        assert reachable_pairs(db, nfa, targets=["ghost"]) == set()
        assert reachable_to(db, nfa, "ghost") == set()


class TestLruInvariance:
    def test_eviction_never_changes_answers(self):
        query = vsf_scaling_query()
        db = random_graph(14, 35, ABC, seed=11)
        reference = evaluate_vsf(query, db)
        invalidate_cache(db)
        with cache_capacity(2):
            index = reachability_index(db)
            assert index.capacity == 2
            constrained = evaluate_vsf(query, db)
            assert constrained.tuples == reference.tuples
            assert index.evictions > 0, "the workload must exceed the LRU cap"
        invalidate_cache(db)

    def test_evicted_entries_are_recomputed_correctly(self):
        db = random_graph(10, 25, ABC, seed=5)
        patterns = [compiled(pattern) for pattern in REGEX_POOL]
        expected = [reachable_pairs(db, nfa) for nfa in patterns]
        # The oracle runs above went through the shared index (the CSR
        # kernel memoises its adjacency snapshot there); drop it so the
        # capped index below is the one the registry hands out.
        invalidate_cache(db)
        with cache_capacity(3):
            index = reachability_index(db)
            # Two passes over more fingerprints than the cap: the second
            # pass re-misses evicted entries but the answers are identical.
            for _round in range(2):
                for nfa, pairs in zip(patterns, expected):
                    assert index.reachable_pairs(nfa) == pairs
            assert index.evictions > 0
            stats = index.stats()
            assert stats["pairs"]["entries"] <= 3
        invalidate_cache(db)
