"""Tests for the evaluation of CXRPQ^vsf / CXRPQ^vsf,fl (Theorem 2, Theorem 5)."""

import pytest

from repro.core.alphabet import Alphabet
from repro.core.errors import FragmentError
from repro.engine.generic import evaluate_generic
from repro.engine.normal_form import normal_form
from repro.engine.vsf import disjunct_combinations, evaluate_vsf, vsf_holds
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import random_graph
from repro.queries import CXRPQ
from repro.workloads import vsf_fl_scaling_query, vsf_scaling_query

ABC = Alphabet("abc")


def branch_db() -> GraphDatabase:
    return GraphDatabase.from_edges(
        [
            ("s", "a", "p"),
            ("p", "c", "q"),
            ("s", "b", "r"),
            ("r", "c", "q"),
            ("s", "c", "r"),
            ("q", "a", "s"),
        ]
    )


class TestEvaluation:
    def test_requires_vstar_free(self):
        query = CXRPQ([("x", "w{a*}", "y"), ("y", "(&w)+", "z")])
        with pytest.raises(FragmentError):
            evaluate_vsf(query, branch_db())

    def test_alternation_with_variables(self):
        # Either both edges read the code w, or the second edge reads c.
        query = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w|c", "z")], ("x", "z"))
        result = evaluate_vsf(query, branch_db())
        assert ("s", "q") in result.tuples   # s -a-> p, then the c-branch p -c-> q
        assert ("q", "p") in result.tuples   # q -a-> s, then s -a-> p with &w = a
        assert all(pair[0] != "p" for pair in result.tuples)  # p has no a|b successor

    def test_definition_in_one_branch_only(self):
        # If the branch without the definition is taken, references are empty.
        query = CXRPQ([("x", "w{aa}|b", "y"), ("y", "&w c", "z")], ("x", "z"))
        db = GraphDatabase.from_edges(
            [(0, "b", 1), (1, "c", 2), (3, "a", 4), (4, "a", 5), (5, "a", 6), (6, "a", 7), (7, "c", 8)]
        )
        result = evaluate_vsf(query, db)
        # Branch "b": w is empty, so the second edge is just "c".
        assert (0, 2) in result.tuples
        # Branch with the definition: w = aa, then the second edge reads "aac".
        assert (3, 8) in result.tuples
        # Mixing the branches is impossible: after 0 -b-> 1 the second edge
        # may not read a non-empty image of w.
        assert all(pair != (0, 8) and pair != (3, 7) for pair in result.tuples)

    def test_definition_branch_positive_case(self):
        query = CXRPQ([("x", "w{aa}|b", "y"), ("y", "&w c", "z")], ("x", "z"))
        db = GraphDatabase.from_edges(
            [(0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 4), (4, "c", 5)]
        )
        result = evaluate_vsf(query, db)
        assert (0, 5) in result.tuples

    def test_vsf_fl_query_from_workloads(self):
        db = random_graph(12, 30, ABC, seed=4)
        query = vsf_fl_scaling_query()
        assert query.is_vstar_free_flat()
        result = evaluate_vsf(query, db)
        assert isinstance(result.boolean, bool)

    def test_boolean_matches_paper_example_g2(self):
        from repro.paperlib import figures

        query = figures.figure2_g2()
        # Craft a triangle: v1 -aa-> v2 -cc-> v3 -aa-> v1 (x = aa, y = cc, back via x).
        db = GraphDatabase.from_edges(
            [(1, "a", 10), (10, "a", 2), (2, "c", 20), (20, "c", 3), (3, "a", 30), (30, "a", 1)]
        )
        result = evaluate_vsf(query, db)
        assert (1, 2, 3) in result.tuples

    def test_precomputed_normal_form_reuse(self):
        query = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w|c", "z")])
        normalised = normal_form(query.conjunctive_xregex)
        db = branch_db()
        assert (
            evaluate_vsf(query, db, precomputed_normal_form=normalised).boolean
            == evaluate_vsf(query, db).boolean
        )

    def test_disjunct_combinations_count(self):
        query = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w|c", "z")])
        normalised = normal_form(query.conjunctive_xregex)
        combos = list(disjunct_combinations(normalised))
        assert len(combos) == 2  # component 2 splits into (&w) and (c)


class TestCrossValidation:
    def test_agrees_with_generic_oracle(self):
        query = CXRPQ([("x", "w{a|b}c*", "y"), ("x", "(&w|c)b*", "z")], ("y", "z"))
        for seed in range(3):
            db = random_graph(5, 11, ABC, seed=seed)
            fast = evaluate_vsf(query, db)
            oracle = evaluate_generic(query, db, max_path_length=3)
            assert oracle.tuples <= fast.tuples

    def test_boolean_equivalence_with_bounded_engine_when_images_small(self):
        from repro.engine.bounded import evaluate_bounded

        # All variable images have length exactly 1, so CXRPQ^<=1 semantics coincide.
        query = CXRPQ([("x", "w{a|b}", "y"), ("y", "&w|c", "z")])
        for seed in range(3):
            db = random_graph(6, 14, ABC, seed=seed)
            assert vsf_holds(query, db) == evaluate_bounded(query, db, bound=1).boolean
