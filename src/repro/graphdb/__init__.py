"""Graph databases: directed, edge-labelled multigraphs (Section 2.2)."""

from repro.graphdb.database import GraphDatabase, Edge
from repro.graphdb.paths import (
    reachable_pairs,
    reachable_from,
    evaluate_rpq,
    find_path_word,
    db_nfa_between,
)
from repro.graphdb.cache import (
    DatabaseAutomatonView,
    ReachabilityIndex,
    caching_disabled,
    caching_enabled,
    reachability_index,
)

__all__ = [
    "GraphDatabase",
    "Edge",
    "reachable_pairs",
    "reachable_from",
    "evaluate_rpq",
    "find_path_word",
    "db_nfa_between",
    "DatabaseAutomatonView",
    "ReachabilityIndex",
    "caching_disabled",
    "caching_enabled",
    "reachability_index",
]
