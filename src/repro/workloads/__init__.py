"""Parameterised workloads used by the benchmark harness (see EXPERIMENTS.md)."""

from repro.workloads.builders import (
    genealogy_workload,
    message_workload,
    random_workload,
    nfa_intersection_workload,
    hitting_set_workload,
    vsf_scaling_query,
    vsf_fl_scaling_query,
    bounded_scaling_query,
)

__all__ = [
    "genealogy_workload",
    "message_workload",
    "random_workload",
    "nfa_intersection_workload",
    "hitting_set_workload",
    "vsf_scaling_query",
    "vsf_fl_scaling_query",
    "bounded_scaling_query",
]
