"""Evaluation of variable-star free CXRPQs (Theorem 2, Lemmas 7 and 9).

The algorithm follows the paper's road map:

1. transform the conjunctive xregex into normal form (Section 5.1), so every
   component becomes an alternation of *simple* xregex;
2. the nondeterministic choice of the proof of Lemma 7 — which alternation
   branch each component takes — is realised by enumerating the disjunct
   combinations;
3. each chosen combination is a simple conjunctive xregex and is evaluated
   with the Lemma 3 engine.  References of variables whose definition lives
   in a *non-chosen* disjunct are forced to the empty word, as required by
   the conjunctive semantics.

For ``CXRPQ^vsf,fl`` the very same code applies; the normal form is only
polynomially larger (Lemma 8), which is what Theorem 5's PSpace bound rests
on and what the benchmark E-NF measures.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.alphabet import Alphabet
from repro.core.errors import FragmentError
from repro.engine.normal_form import normal_form
from repro.engine.results import DEFAULT_MATCH_LIMIT, EvaluationResult
from repro.engine.simple import evaluate_simple_components
from repro.graphdb.database import GraphDatabase
from repro.queries.cxrpq import CXRPQ
from repro.regex import properties as props
from repro.regex import syntax as rx
from repro.regex.conjunctive import ConjunctiveXregex

Node = Hashable


def disjunct_combinations(conjunctive: ConjunctiveXregex) -> Iterator[Tuple[rx.Xregex, ...]]:
    """All ways of picking one normal-form disjunct per component."""
    per_component: List[List[rx.Xregex]] = [
        props.normal_form_disjuncts(component) for component in conjunctive.components
    ]
    yield from iter_product(*per_component)


def evaluate_vsf(
    query: CXRPQ,
    db: GraphDatabase,
    alphabet: Optional[Alphabet] = None,
    *,
    boolean_short_circuit: bool = True,
    collect_witnesses: bool = False,
    match_limit: int = DEFAULT_MATCH_LIMIT,
    image_bound: Optional[int] = None,
    fixed: Optional[Dict[str, Node]] = None,
    precomputed_normal_form: Optional[ConjunctiveXregex] = None,
) -> EvaluationResult:
    """Evaluate a ``CXRPQ^vsf`` (or ``CXRPQ^vsf,fl``) query (Theorem 2 / Theorem 5).

    ``precomputed_normal_form`` lets callers (and benchmarks) amortise the
    normal-form construction across several databases.
    """
    conjunctive = query.conjunctive_xregex
    if not conjunctive.is_vstar_free():
        raise FragmentError(
            "evaluate_vsf requires a variable-star free query; "
            "use evaluate_bounded (CXRPQ^<=k semantics) or evaluate_generic instead"
        )
    if image_bound is None:
        image_bound = query.resolve_image_bound(db.size())
    normalised = precomputed_normal_form or normal_form(conjunctive)
    defined_globally = normalised.defined_variables()
    alphabet = alphabet or db.alphabet()
    result = EvaluationResult()
    # Different normal-form branches can yield syntactically identical
    # combinations; each is a pure function of (pattern, components, db),
    # so duplicates are skipped.  Unit automata shared *between* distinct
    # combinations are still deduplicated by the per-database reachability
    # cache underneath the Lemma 3 engine.
    seen_combinations: Set[Tuple[rx.Xregex, ...]] = set()
    for combination in disjunct_combinations(normalised):
        if combination in seen_combinations:
            continue
        seen_combinations.add(combination)
        partial = evaluate_simple_components(
            query.pattern,
            list(combination),
            query.output_variables,
            db,
            alphabet,
            defined_globally=set(defined_globally),
            boolean_short_circuit=boolean_short_circuit,
            collect_witnesses=collect_witnesses,
            match_limit=match_limit,
            image_bound=image_bound,
            fixed=fixed,
        )
        result.merge(partial)
        if query.is_boolean and boolean_short_circuit and result.boolean:
            return result
    return result


def vsf_holds(query: CXRPQ, db: GraphDatabase, alphabet: Optional[Alphabet] = None) -> bool:
    """Boolean evaluation ``D |= q`` for vstar-free queries."""
    return evaluate_vsf(query, db, alphabet).boolean
