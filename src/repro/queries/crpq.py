"""Conjunctive regular path queries (CRPQs).

A CRPQ is a conjunctive path query whose edge labels are classical regular
expressions (Section 2.3).  Evaluation is NP-complete in combined complexity
and NL-complete in data complexity (Lemma 1); the implementation of that
algorithm lives in :mod:`repro.engine.crpq`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.core.alphabet import Alphabet
from repro.core.errors import XregexSyntaxError
from repro.queries.base import ConjunctivePathQuery
from repro.queries.pattern import GraphPattern
from repro.regex import syntax as rx
from repro.regex.parser import parse_xregex


LabelInput = Union[str, rx.Xregex]


def _coerce_classical(label: LabelInput) -> rx.Xregex:
    expr = parse_xregex(label) if isinstance(label, str) else label
    if not expr.is_classical():
        raise XregexSyntaxError(
            f"CRPQ edge labels must be classical regular expressions, got {expr}"
        )
    return expr


class CRPQ(ConjunctivePathQuery):
    """A conjunctive regular path query."""

    __slots__ = ()

    def __init__(
        self,
        edges: Iterable[Tuple[str, LabelInput, str]],
        output_variables: Sequence[str] = (),
    ):
        pattern = GraphPattern()
        for source, label, target in edges:
            pattern.add_edge(source, _coerce_classical(label), target)
        super().__init__(pattern, output_variables)

    def regexes(self) -> Tuple[rx.Xregex, ...]:
        """The edge regular expressions in edge order."""
        return tuple(edge.label for edge in self.pattern.edges)

    def alphabet(self, database_alphabet: Optional[Alphabet] = None) -> Alphabet:
        """The terminal symbols used by the query (or the database alphabet if given)."""
        if database_alphabet is not None:
            return database_alphabet
        symbols = set()
        for regex in self.regexes():
            symbols |= regex.terminal_symbols()
        return Alphabet(symbols or {"a"})
